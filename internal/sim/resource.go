package sim

import (
	"fmt"
	"time"
)

// Semaphore is a FIFO counting semaphore for simulated tasks. It models a
// pool of identical resources such as the CPU cores of a node. Waiters are
// served strictly in arrival order (hand-off semantics: a released unit goes
// directly to the oldest waiter). The wait queue is a growable ring buffer —
// dequeuing the oldest waiter is O(1) with no re-slicing churn — and
// membership is tested in O(1) through Task.waitingSem instead of a scan.
type Semaphore struct {
	name  string
	total int
	avail int
	ring  []*Task // capacity is always a power of two
	head  int     // index of the oldest waiter
	count int     // queued waiters
}

// NewSemaphore creates a semaphore with n units.
func NewSemaphore(name string, n int) *Semaphore {
	if n < 1 {
		panic(fmt.Sprintf("sim: semaphore %q must have at least one unit, got %d", name, n))
	}
	return &Semaphore{name: name, total: n, avail: n}
}

// pushWaiter appends t to the tail of the ring, growing it when full.
func (s *Semaphore) pushWaiter(t *Task) {
	if s.count == len(s.ring) {
		grown := make([]*Task, max(4, 2*len(s.ring)))
		for i := 0; i < s.count; i++ {
			grown[i] = s.ring[(s.head+i)&(len(s.ring)-1)]
		}
		s.ring = grown
		s.head = 0
	}
	s.ring[(s.head+s.count)&(len(s.ring)-1)] = t
	s.count++
}

// popWaiter removes and returns the oldest waiter.
func (s *Semaphore) popWaiter() *Task {
	t := s.ring[s.head]
	s.ring[s.head] = nil
	s.head = (s.head + 1) & (len(s.ring) - 1)
	s.count--
	return t
}

// Acquire takes one unit, blocking the task in FIFO order if none are free.
func (s *Semaphore) Acquire(t *Task) {
	if s.avail > 0 && s.count == 0 {
		s.avail--
		return
	}
	s.pushWaiter(t)
	t.waitingSem = s
	for {
		t.Park("semaphore " + s.name)
		// A hand-off clears waitingSem before the wake; a stray token does
		// not, so a spurious wake loops back into Park without losing the
		// task's place in line.
		if t.waitingSem != s {
			return
		}
	}
}

// TryAcquire takes a unit without blocking; it reports whether it succeeded.
func (s *Semaphore) TryAcquire() bool {
	if s.avail > 0 && s.count == 0 {
		s.avail--
		return true
	}
	return false
}

// Release returns one unit. If tasks are waiting, the unit is handed to the
// oldest waiter without becoming generally available.
func (s *Semaphore) Release() {
	if s.count > 0 {
		w := s.popWaiter()
		w.waitingSem = nil
		w.Unpark()
		return
	}
	if s.avail == s.total {
		panic(fmt.Sprintf("sim: semaphore %q released above capacity", s.name))
	}
	s.avail++
}

// InUse reports how many units are currently held.
func (s *Semaphore) InUse() int { return s.total - s.avail }

// Waiting reports how many tasks are queued.
func (s *Semaphore) Waiting() int { return s.count }

// Bus models a shared FIFO bandwidth server, e.g. a node's memory channels
// or a network link. Transfers are serialized: a transfer arriving while the
// bus is busy starts when the bus frees up. An optional congestion factor
// models the super-linear slowdown of real memory controllers under
// multi-stream interference (bank conflicts, row-buffer misses): each
// concurrent outstanding transfer inflates service time by alpha.
type Bus struct {
	eng        *Engine
	name       string
	bytesPerS  float64
	congestion float64
	active     int
	freeAt     time.Duration
	busyTime   time.Duration
	bytes      uint64
}

// NewBus creates a bus with the given bandwidth in bytes per second.
func NewBus(eng *Engine, name string, bytesPerSecond float64) *Bus {
	if bytesPerSecond <= 0 {
		panic(fmt.Sprintf("sim: bus %q must have positive bandwidth", name))
	}
	return &Bus{eng: eng, name: name, bytesPerS: bytesPerSecond}
}

// SetCongestion sets the per-concurrent-transfer service-time inflation
// factor (0 disables congestion modeling).
func (b *Bus) SetCongestion(alpha float64) { b.congestion = alpha }

// Occupy reserves the bus for transferring n bytes and returns the virtual
// time at which the transfer completes, without blocking the caller. Use it
// from event context (e.g. a message handler).
func (b *Bus) Occupy(n int) time.Duration {
	now := b.eng.Now()
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	d := b.duration(n)
	if d == 0 {
		return start
	}
	if b.congestion > 0 && b.active > 0 {
		d += time.Duration(float64(d) * b.congestion * float64(b.active))
	}
	finish := start + d
	b.active++
	b.eng.After(finish-now, func() { b.active-- })
	b.freeAt = finish
	b.busyTime += d
	b.bytes += uint64(n)
	return finish
}

// Transfer blocks the task until n bytes have moved across the bus.
func (b *Bus) Transfer(t *Task, n int) {
	t.SleepUntil(b.Occupy(n))
}

// BusyTime reports the cumulative time the bus has spent transferring.
func (b *Bus) BusyTime() time.Duration { return b.busyTime }

// Bytes reports the cumulative bytes transferred.
func (b *Bus) Bytes() uint64 { return b.bytes }

func (b *Bus) duration(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / b.bytesPerS * float64(time.Second))
}

// Mailbox is an unbounded FIFO queue connecting simulation participants.
// Any number of tasks may block in Recv; senders never block.
type Mailbox[T any] struct {
	name  string
	queue []T
	recvQ []*Task
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any](name string) *Mailbox[T] {
	return &Mailbox[T]{name: name}
}

// Send enqueues v and wakes the oldest blocked receiver, if any. It may be
// called from event context or task context.
func (m *Mailbox[T]) Send(v T) {
	m.queue = append(m.queue, v)
	if len(m.recvQ) > 0 {
		r := m.recvQ[0]
		m.recvQ = m.recvQ[1:]
		r.Unpark()
	}
}

// Recv dequeues the oldest message, blocking the task until one is available.
func (m *Mailbox[T]) Recv(t *Task) T {
	for len(m.queue) == 0 {
		m.recvQ = append(m.recvQ, t)
		t.Park("mailbox " + m.name)
		m.dropReceiver(t)
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v
}

// TryRecv dequeues a message without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	var zero T
	if len(m.queue) == 0 {
		return zero, false
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v, true
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.queue) }

func (m *Mailbox[T]) dropReceiver(t *Task) {
	for i, r := range m.recvQ {
		if r == t {
			m.recvQ = append(m.recvQ[:i], m.recvQ[i+1:]...)
			return
		}
	}
}

package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// laneTrace is the observable outcome of one synthetic multi-lane run:
// per-lane event logs (lane-owned, so recording them is race-free), the
// global lane's log, and the committed event count. Byte-identical runs
// produce DeepEqual traces.
type laneTrace struct {
	perLane [][]string
	global  []string
	events  uint64
}

// runLaneWorkload drives a synthetic workload exercising every parallel-core
// mechanism: lane-local sleeps with lane-RNG draws, cross-lane messages
// riding the lookahead, periodic global-lane events forcing serialized
// windows, and park/unpark traffic. The trace must be identical at any core
// count.
func runLaneWorkload(t *testing.T, nodes, cores int) laneTrace {
	t.Helper()
	const la = time.Microsecond
	root := NewEngine(42)
	root.ConfigureLanes(nodes, cores)
	root.SetLookahead(la)

	tr := laneTrace{perLane: make([][]string, nodes)}
	views := make([]*Engine, nodes)
	for i := range views {
		views[i] = root.LaneView(i)
	}
	for i := 0; i < nodes; i++ {
		i := i
		v := views[i]
		v.Spawn(fmt.Sprintf("worker-%d", i), func(task *Task) {
			for k := 0; k < 40; k++ {
				task.Sleep(time.Duration(v.Rand().Intn(700)) * time.Nanosecond)
				tr.perLane[i] = append(tr.perLane[i],
					fmt.Sprintf("step k=%d now=%v draw=%d", k, task.Now(), v.Rand().Intn(1000)))
				// Cross-lane message to the next lane: must ride the lookahead.
				dst := (i + 1) % nodes
				jitter := time.Duration(v.Rand().Intn(300)) * time.Nanosecond
				v.AfterOn(dst, la+jitter, func() {
					tr.perLane[dst] = append(tr.perLane[dst],
						fmt.Sprintf("msg from=%d now=%v", i, views[dst].Now()))
				})
			}
		})
	}
	// Global-lane heartbeat: forces serialized windows to interleave with
	// parallel ones and reads cross-lane state (legal on the global lane).
	var beat func()
	beats := 0
	beat = func() {
		beats++
		total := 0
		for i := range tr.perLane {
			total += len(tr.perLane[i])
		}
		tr.global = append(tr.global, fmt.Sprintf("beat %d now=%v entries=%d", beats, root.Now(), total))
		if beats < 12 {
			root.After(3*time.Microsecond, beat)
		}
	}
	root.After(2*time.Microsecond, beat)

	if err := root.Run(); err != nil {
		t.Fatalf("nodes=%d cores=%d: %v", nodes, cores, err)
	}
	tr.events = root.Events()
	return tr
}

// TestWindowedEquivalence is the core byte-identity property: the same seed
// and workload produce identical traces serially and at every core count.
func TestWindowedEquivalence(t *testing.T) {
	ref := runLaneWorkload(t, 4, 1)
	for _, cores := range []int{2, 4, 8} {
		got := runLaneWorkload(t, 4, cores)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("cores=%d trace diverged from serial:\nserial: %+v\ngot:    %+v", cores, ref, got)
		}
	}
}

// TestWindowedEquivalenceSingleLane checks the inline single-active-lane
// fast path agrees with serial execution too.
func TestWindowedEquivalenceSingleLane(t *testing.T) {
	ref := runLaneWorkload(t, 1, 1)
	if got := runLaneWorkload(t, 1, 4); !reflect.DeepEqual(ref, got) {
		t.Fatalf("single-lane parallel trace diverged:\nserial: %+v\ngot:    %+v", ref, got)
	}
}

// TestGlobalRandGuard verifies the satellite guard: drawing from the global
// view's RNG while node lanes execute concurrently is a determinism bug and
// must panic (surfaced as a lane failure from Run).
func TestGlobalRandGuard(t *testing.T) {
	root := NewEngine(7)
	root.ConfigureLanes(2, 2)
	root.SetLookahead(time.Microsecond)
	v0, v1 := root.LaneView(0), root.LaneView(1)
	// Both lanes need same-window work or the scheduler serializes the run.
	v1.After(100*time.Nanosecond, func() {})
	v0.After(100*time.Nanosecond, func() {
		root.Rand().Intn(10)
	})
	err := root.Run()
	if err == nil || !strings.Contains(err.Error(), "Engine.Rand used from the global view") {
		t.Fatalf("expected global-rand guard panic, got %v", err)
	}
}

// TestLaneRandSplitStreams verifies each lane draws an independent stream:
// two lanes with the same seed must not produce the same sequence, and the
// global stream must match a classic serial engine with the same seed.
func TestLaneRandSplitStreams(t *testing.T) {
	root := NewEngine(99)
	root.ConfigureLanes(2, 1)
	a, b := root.LaneView(0), root.LaneView(1)
	same := 0
	for i := 0; i < 32; i++ {
		if a.Rand().Intn(1<<30) == b.Rand().Intn(1<<30) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("lane RNG streams look identical (%d/32 equal draws)", same)
	}
	classic := NewEngine(99)
	if classic.Rand().Intn(1<<30) != NewEngine(99).Rand().Intn(1<<30) {
		t.Fatal("global stream not reproducible for equal seeds")
	}
}

// TestLaneViolationPanics verifies the conservative guard: a node lane
// scheduling onto another lane inside the current window is caught, not
// silently racy.
func TestLaneViolationPanics(t *testing.T) {
	root := NewEngine(5)
	root.ConfigureLanes(2, 2)
	root.SetLookahead(time.Microsecond)
	v0, v1 := root.LaneView(0), root.LaneView(1)
	v1.After(50*time.Nanosecond, func() {}) // keep lane 1 active in the window
	v0.After(50*time.Nanosecond, func() {
		v0.AfterOn(1, 100*time.Nanosecond, func() {}) // inside the window: illegal
	})
	err := root.Run()
	if err == nil || !strings.Contains(err.Error(), "lane violation") {
		t.Fatalf("expected lane violation, got %v", err)
	}
}

// TestParkTimeoutHeapBounded is the satellite regression test: a task that
// repeatedly arms ParkTimeout and is unparked early must not accumulate
// stale timer events — cancellation tombstones them and compaction keeps the
// lane heap bounded.
func TestParkTimeoutHeapBounded(t *testing.T) {
	eng := NewEngine(1)
	const rounds = 20000
	var waiter *Task
	waiter = eng.Spawn("waiter", func(task *Task) {
		for i := 0; i < rounds; i++ {
			if !task.ParkTimeout("wait", time.Hour) {
				t.Error("timeout fired despite immediate unpark")
				return
			}
		}
	})
	eng.Spawn("waker", func(task *Task) {
		for i := 0; i < rounds; i++ {
			task.Sleep(10 * time.Nanosecond)
			waiter.Unpark()
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(eng.ls().heap); n > 128 {
		t.Fatalf("lane heap retained %d entries after %d cancelled timeouts; compaction is not working", n, rounds)
	}
}

// TestParkTimeoutCancelAfterSetLane verifies the cancellation follows the
// task across a lane move: the timer was scheduled on the old lane's heap,
// so after SetLane the cancel must still hit that heap (and its tombstone
// accounting), not the new lane's.
func TestParkTimeoutCancelAfterSetLane(t *testing.T) {
	root := NewEngine(3)
	root.ConfigureLanes(2, 1)
	root.SetLookahead(time.Microsecond)
	v0 := root.LaneView(0)
	timedOut := false
	task := v0.Spawn("mover", func(task *Task) {
		timedOut = !task.ParkTimeout("moving", time.Hour)
	})
	root.After(time.Microsecond, func() {
		task.SetLane(1)
		task.Unpark()
	})
	// Drain far past the timeout horizon: a stale timer would fire here.
	root.After(2*time.Hour, func() {})
	if err := root.Run(); err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("cancelled timer fired after SetLane")
	}
	if tombs := root.c.lanes[1].tombs; tombs < 0 {
		t.Fatalf("lane 0 tombstone mis-accounted on lane 1: tombs=%d", tombs)
	}
	for i, l := range root.c.lanes {
		if l.tombs < 0 || l.tombs > l.heap.Len() {
			t.Fatalf("lane %d tombstone accounting broken: tombs=%d heap=%d", i-1, l.tombs, l.heap.Len())
		}
	}
}

// TestAfterOnUnconfiguredEngineStaysGlobal: layers written against the lane
// API (the fabric) must run unchanged on a classic serial engine — AfterOn
// clamps to the global lane when the node lane does not exist.
func TestAfterOnUnconfiguredEngineStaysGlobal(t *testing.T) {
	eng := NewEngine(1)
	ran := false
	eng.AfterOn(3, time.Microsecond, func() { ran = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("AfterOn event did not run on unconfigured engine")
	}
}

// TestConfigureLanesTwicePanics documents the API contract.
func TestConfigureLanesTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second ConfigureLanes did not panic")
		}
	}()
	eng := NewEngine(1)
	eng.ConfigureLanes(2, 1)
	eng.ConfigureLanes(2, 1)
}

package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(3*time.Microsecond, func() { got = append(got, 3) })
	e.After(1*time.Microsecond, func() { got = append(got, 1) })
	e.After(2*time.Microsecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Microsecond {
		t.Fatalf("Now = %v, want 3µs", e.Now())
	}
}

func TestAfterSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Microsecond, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(-time.Second, func() { ran = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%v", ran, e.Now())
	}
}

func TestTaskSleep(t *testing.T) {
	e := NewEngine(1)
	var at []time.Duration
	e.Spawn("sleeper", func(tk *Task) {
		at = append(at, tk.Now())
		tk.Sleep(5 * time.Microsecond)
		at = append(at, tk.Now())
		tk.Sleep(0)
		at = append(at, tk.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at[0] != 0 || at[1] != 5*time.Microsecond || at[2] != 5*time.Microsecond {
		t.Fatalf("sleep times = %v", at)
	}
}

func TestTasksInterleave(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Spawn("a", func(tk *Task) {
		trace = append(trace, "a0")
		tk.Sleep(2 * time.Microsecond)
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(tk *Task) {
		trace = append(trace, "b0")
		tk.Sleep(1 * time.Microsecond)
		trace = append(trace, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a0", "b0", "b1", "a2"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine(1)
	var woke time.Duration
	blocked := e.Spawn("blocked", func(tk *Task) {
		tk.Park("waiting for signal")
		woke = tk.Now()
	})
	e.Spawn("waker", func(tk *Task) {
		tk.Sleep(7 * time.Microsecond)
		blocked.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 7*time.Microsecond {
		t.Fatalf("woke at %v, want 7µs", woke)
	}
}

func TestUnparkBeforeParkToken(t *testing.T) {
	e := NewEngine(1)
	done := false
	var tsk *Task
	tsk = e.Spawn("t", func(tk *Task) {
		tk.Sleep(time.Microsecond) // token arrives while sleeping
		tk.Park("should not block")
		done = true
	})
	e.After(0, func() { tsk.Unpark() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("park did not consume pending token")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", func(tk *Task) { tk.Park("never woken") })
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine(1)
	e.SetEventLimit(100)
	var spin func()
	spin = func() { e.After(time.Nanosecond, spin) }
	spin()
	if err := e.Run(); !errors.Is(err, ErrEventLimit) {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

func TestTaskPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bomb", func(tk *Task) { panic("boom") })
	e.Spawn("other", func(tk *Task) { tk.Sleep(time.Second) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected error from panicking task")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine(42)
		var out []time.Duration
		for i := 0; i < 5; i++ {
			e.Spawn("t", func(tk *Task) {
				for j := 0; j < 10; j++ {
					tk.Sleep(time.Duration(e.Rand().Intn(100)) * time.Microsecond)
					out = append(out, tk.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine(1)
	sem := NewSemaphore("cores", 2)
	var order []string
	worker := func(name string, hold time.Duration) func(*Task) {
		return func(tk *Task) {
			sem.Acquire(tk)
			order = append(order, name+"+")
			tk.Sleep(hold)
			order = append(order, name+"-")
			sem.Release()
		}
	}
	e.Spawn("a", worker("a", 10*time.Microsecond))
	e.Spawn("b", worker("b", 10*time.Microsecond))
	e.Spawn("c", worker("c", 10*time.Microsecond))
	e.Spawn("d", worker("d", 10*time.Microsecond))
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a+", "b+", "a-", "b-", "c+", "d+", "c-", "d-"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sem.InUse() != 0 {
		t.Fatalf("InUse = %d after all released", sem.InUse())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine(1)
	sem := NewSemaphore("s", 1)
	e.Spawn("t", func(tk *Task) {
		if !sem.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if sem.TryAcquire() {
			t.Error("second TryAcquire succeeded")
		}
		sem.Release()
		if !sem.TryAcquire() {
			t.Error("TryAcquire after release failed")
		}
		sem.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSemaphoreStrayTokenDoesNotGrant(t *testing.T) {
	e := NewEngine(1)
	sem := NewSemaphore("s", 1)
	var acquiredAt time.Duration
	holder := e.Spawn("holder", func(tk *Task) {
		sem.Acquire(tk)
		tk.Sleep(10 * time.Microsecond)
		sem.Release()
	})
	_ = holder
	waiter := e.Spawn("waiter", func(tk *Task) {
		sem.Acquire(tk)
		acquiredAt = tk.Now()
		sem.Release()
	})
	// Spurious unpark at t=5µs must not let the waiter through.
	e.After(5*time.Microsecond, func() { waiter.Unpark() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acquiredAt != 10*time.Microsecond {
		t.Fatalf("waiter acquired at %v, want 10µs", acquiredAt)
	}
}

func TestBusSerializes(t *testing.T) {
	e := NewEngine(1)
	bus := NewBus(e, "mem", 1e9) // 1 GB/s => 1µs per KB
	var doneA, doneB time.Duration
	e.Spawn("a", func(tk *Task) {
		bus.Transfer(tk, 1000)
		doneA = tk.Now()
	})
	e.Spawn("b", func(tk *Task) {
		bus.Transfer(tk, 1000)
		doneB = tk.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if doneA != time.Microsecond {
		t.Fatalf("doneA = %v, want 1µs", doneA)
	}
	if doneB != 2*time.Microsecond {
		t.Fatalf("doneB = %v, want 2µs (serialized)", doneB)
	}
	if bus.Bytes() != 2000 {
		t.Fatalf("Bytes = %d, want 2000", bus.Bytes())
	}
	if bus.BusyTime() != 2*time.Microsecond {
		t.Fatalf("BusyTime = %v, want 2µs", bus.BusyTime())
	}
}

func TestBusZeroBytes(t *testing.T) {
	e := NewEngine(1)
	bus := NewBus(e, "mem", 1e9)
	e.Spawn("a", func(tk *Task) {
		bus.Transfer(tk, 0)
		if tk.Now() != 0 {
			t.Errorf("zero-byte transfer advanced time to %v", tk.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int]("m")
	var got []int
	e.Spawn("recv", func(tk *Task) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(tk))
		}
	})
	e.Spawn("send", func(tk *Task) {
		for i := 1; i <= 3; i++ {
			tk.Sleep(time.Microsecond)
			mb.Send(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestMailboxSendBeforeRecv(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[string]("m")
	mb.Send("early")
	var got string
	e.Spawn("recv", func(tk *Task) { got = mb.Recv(tk) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != "early" {
		t.Fatalf("got %q", got)
	}
}

func TestMailboxMultipleReceivers(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int]("m")
	sum := 0
	for i := 0; i < 3; i++ {
		e.Spawn("recv", func(tk *Task) { sum += mb.Recv(tk) })
	}
	e.Spawn("send", func(tk *Task) {
		tk.Sleep(time.Microsecond)
		mb.Send(1)
		mb.Send(2)
		mb.Send(4)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum != 7 {
		t.Fatalf("sum = %d, want 7", sum)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int]("m")
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox succeeded")
	}
	mb.Send(9)
	v, ok := mb.TryRecv()
	if !ok || v != 9 {
		t.Fatalf("TryRecv = %d,%v", v, ok)
	}
	_ = e
}

func TestSpawnAfter(t *testing.T) {
	e := NewEngine(1)
	var started time.Duration
	e.SpawnAfter("late", 3*time.Microsecond, func(tk *Task) { started = tk.Now() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if started != 3*time.Microsecond {
		t.Fatalf("started at %v", started)
	}
}

func TestBusCongestionInflatesConcurrentStreams(t *testing.T) {
	run := func(alpha float64) time.Duration {
		e := NewEngine(1)
		bus := NewBus(e, "mem", 1e9)
		bus.SetCongestion(alpha)
		var last time.Duration
		for i := 0; i < 4; i++ {
			e.Spawn("s", func(tk *Task) {
				bus.Transfer(tk, 1000)
				if tk.Now() > last {
					last = tk.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return last
	}
	plain := run(0)
	congested := run(0.25)
	if plain != 4*time.Microsecond {
		t.Fatalf("plain = %v", plain)
	}
	if congested <= plain {
		t.Fatalf("congestion had no effect: %v vs %v", congested, plain)
	}
	// A single stream sees no congestion either way.
	single := func(alpha float64) time.Duration {
		e := NewEngine(1)
		bus := NewBus(e, "m", 1e9)
		bus.SetCongestion(alpha)
		var d time.Duration
		e.Spawn("s", func(tk *Task) {
			bus.Transfer(tk, 1000)
			tk.Sleep(10 * time.Microsecond) // let the active window expire
			start := tk.Now()
			bus.Transfer(tk, 1000)
			d = tk.Now() - start
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return d
	}
	if single(0.25) != single(0) {
		t.Fatalf("lone stream penalized: %v vs %v", single(0.25), single(0))
	}
}

func TestEngineEventCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.After(time.Microsecond, func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Events() != 5 {
		t.Fatalf("Events = %d", e.Events())
	}
}

func TestTaskAccessors(t *testing.T) {
	e := NewEngine(1)
	tk := e.Spawn("named", func(tk *Task) {
		if tk.Name() != "named" {
			t.Errorf("Name = %q", tk.Name())
		}
		if tk.Engine() != e {
			t.Error("Engine mismatch")
		}
		if tk.Now() != e.Now() {
			t.Error("Now mismatch")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !tk.Done() {
		t.Fatal("task not done")
	}
	tk.Unpark() // unparking a finished task must be a no-op
}

func TestUnparkFinishedTaskNoop(t *testing.T) {
	e := NewEngine(1)
	done := e.Spawn("d", func(tk *Task) {})
	e.SpawnAfter("later", time.Microsecond, func(tk *Task) {
		done.Unpark() // already finished
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestParkTimeoutFires(t *testing.T) {
	e := NewEngine(1)
	var woke bool
	var at time.Duration
	e.Spawn("waiter", func(tk *Task) {
		woke = tk.ParkTimeout("reply", 5*time.Microsecond)
		at = tk.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke {
		t.Fatal("ParkTimeout returned true with no unpark")
	}
	if at != 5*time.Microsecond {
		t.Fatalf("timed out at %v, want 5µs", at)
	}
}

func TestParkTimeoutUnparkedEarly(t *testing.T) {
	e := NewEngine(1)
	var woke bool
	var at time.Duration
	waiter := e.Spawn("waiter", func(tk *Task) {
		woke = tk.ParkTimeout("reply", 50*time.Microsecond)
		at = tk.Now()
		// The stale timeout at t=50µs must not wake this later park.
		tk.Park("second wait")
	})
	e.After(3*time.Microsecond, func() { waiter.Unpark() })
	e.After(100*time.Microsecond, func() { waiter.Unpark() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woke || at != 3*time.Microsecond {
		t.Fatalf("woke=%v at %v, want true at 3µs", woke, at)
	}
	if e.Now() != 100*time.Microsecond {
		t.Fatalf("second park resolved at %v, want 100µs (stale timer must not wake it)", e.Now())
	}
}

func TestParkTimeoutConsumesToken(t *testing.T) {
	e := NewEngine(1)
	var tsk *Task
	var woke bool
	tsk = e.Spawn("t", func(tk *Task) {
		tk.Sleep(time.Microsecond) // token arrives while sleeping
		woke = tk.ParkTimeout("x", time.Second)
	})
	e.After(0, func() { tsk.Unpark() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woke || e.Now() != time.Microsecond {
		t.Fatalf("woke=%v now=%v, want token consumed immediately", woke, e.Now())
	}
}

func TestKillParkedTask(t *testing.T) {
	e := NewEngine(1)
	reached := false
	victim := e.Spawn("victim", func(tk *Task) {
		tk.Park("forever")
		reached = true
	})
	e.After(2*time.Microsecond, func() { victim.Kill() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v (kill must not fail the simulation)", err)
	}
	if reached {
		t.Fatal("killed task executed code after its park")
	}
	if !victim.Done() || !victim.Killed() {
		t.Fatalf("victim done=%v killed=%v", victim.Done(), victim.Killed())
	}
}

func TestKillSleepingTask(t *testing.T) {
	e := NewEngine(1)
	reached := false
	victim := e.Spawn("victim", func(tk *Task) {
		tk.Sleep(10 * time.Microsecond)
		reached = true
	})
	e.After(time.Microsecond, func() { victim.Kill() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reached {
		t.Fatal("killed sleeper executed code after its sleep")
	}
}

func TestKillUnstartedTask(t *testing.T) {
	e := NewEngine(1)
	ran := false
	victim := e.SpawnAfter("late", 10*time.Microsecond, func(tk *Task) { ran = true })
	e.After(time.Microsecond, func() { victim.Kill() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran || !victim.Done() {
		t.Fatalf("ran=%v done=%v, want unstarted victim discarded", ran, victim.Done())
	}
}

func TestKillThenUnparkNoop(t *testing.T) {
	e := NewEngine(1)
	victim := e.Spawn("victim", func(tk *Task) { tk.Park("forever") })
	e.After(time.Microsecond, func() {
		victim.Kill()
		victim.Unpark() // must not double-dispatch the dying task
	})
	e.After(2*time.Microsecond, func() { victim.Unpark() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockDiagnosticsNameCulprit(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("pid0/t3", func(tk *Task) {
		tk.SetDetail("node 2")
		tk.Park("join t1")
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	for _, want := range []string{"pid0/t3", "[node 2]", `"join t1"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadlock message %q missing %q", err.Error(), want)
		}
	}
}

// Package bench defines the simulator hot-path micro-benchmarks shared by
// `go test -bench` (internal/bench/hotpath_bench_test.go) and the
// cmd/dexhotpath tool that emits the machine-readable BENCH_hotpath.json
// perf trajectory. Keeping the benchmark bodies in a plain package lets the
// same code run under both harnesses, so the checked-in numbers and the CI
// smoke run can never drift apart.
//
// The four benchmarks cover the paths the repo's wall-clock is bound by:
//
//   - FaultFastPath: the DSM local-hit path — EnsurePage on a page the node
//     already holds with sufficient rights. This is the paper's "a node may
//     keep accessing a page without contacting the origin" common case and
//     is served by the software TLB in front of the page table.
//   - FaultSlowPath: a write ping-pong between two nodes on one page. Every
//     iteration runs the full protocol: revocation, page transfer, PTE
//     install — the page-transfer allocation path.
//   - EventDispatch: raw simulator event throughput (heap push/pop plus
//     dispatch) with a few hundred timers in flight.
//   - Experiment: one end-to-end experiment table (the §V-D fault
//     microbenchmark) at test scale.
package bench

import (
	"runtime"
	"testing"
	"time"

	"dex"
	"dex/internal/apps"
	"dex/internal/dsm"
	"dex/internal/exper"
	"dex/internal/fabric"
	"dex/internal/mem"
	"dex/internal/sim"
)

// twoNodeDSM builds a minimal two-node cluster fragment: engine, fabric, and
// one DSM manager with its messages routed.
func twoNodeDSM() (*sim.Engine, *dsm.Manager) {
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultParams(2))
	m := dsm.New(eng, net, dsm.DefaultParams(), 0, 0, 2, nil)
	for node := 0; node < 2; node++ {
		node := node
		net.SetHandler(node, func(src int, msg fabric.Message) {
			if !m.HandleMessage(node, src, msg) {
				panic("bench: unroutable message")
			}
		})
	}
	return eng, m
}

// FaultFastPath measures the DSM local-hit path: EnsurePage on pages the
// node already maps with sufficient rights. No protocol work, no simulator
// events — only the translation lookup itself.
func FaultFastPath(b *testing.B) {
	b.ReportAllocs()
	eng, m := twoNodeDSM()
	const pages = 64
	eng.Spawn("bench", func(t *sim.Task) {
		ctx := dsm.Ctx{Node: 0, Site: "bench"}
		for i := 0; i < pages; i++ {
			m.EnsurePage(t, ctx, mem.Addr(i)*mem.PageSize, true)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.EnsurePage(t, ctx, mem.Addr(i%pages)*mem.PageSize, false)
		}
	})
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// FaultSlowPath measures the full protocol path: two nodes alternately
// taking write faults on the same page, so every iteration revokes the
// other copy and moves the page across the fabric.
func FaultSlowPath(b *testing.B) {
	b.ReportAllocs()
	eng, m := twoNodeDSM()
	eng.Spawn("bench", func(t *sim.Task) {
		addr := mem.Addr(0)
		m.EnsurePage(t, dsm.Ctx{Node: 0, Site: "seed"}, addr, true) // first touch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			node := 1 - i%2
			m.EnsurePage(t, dsm.Ctx{Node: node, Site: "pingpong"}, addr, true)
		}
	})
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// EventDispatch measures raw event throughput: each processed event re-arms
// itself until the budget is spent, with eventWidth timers concurrently in
// the queue so heap operations work at a realistic depth.
func EventDispatch(b *testing.B) {
	b.ReportAllocs()
	const eventWidth = 256
	eng := sim.NewEngine(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		eng.After(time.Microsecond, tick)
	}
	b.ResetTimer()
	for i := 0; i < eventWidth && i < b.N; i++ {
		eng.After(time.Duration(i)*time.Nanosecond, tick)
	}
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// parallelCoreAt runs one full application simulation per iteration — kmn
// optimized on four nodes, the configuration with the richest cross-node
// traffic — at the given simulator core count. Comparing the cores=1 and
// cores=N variants measures the conservative-parallel scheduler's wall-clock
// win (and, at GOMAXPROCS=1, its overhead): the simulated results are
// byte-identical either way.
func parallelCoreAt(b *testing.B, cores int) {
	b.ReportAllocs()
	app, ok := apps.ByName("kmn")
	if !ok {
		b.Fatal("unknown application \"kmn\"")
	}
	for i := 0; i < b.N; i++ {
		cfg := apps.Config{
			Nodes:   4,
			Variant: apps.Optimized,
			Opts:    []dex.Option{dex.WithCores(cores)},
		}
		if _, err := app.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ParallelCoreSerial is the cores=1 reference for ParallelCore.
func ParallelCoreSerial(b *testing.B) { parallelCoreAt(b, 1) }

// ParallelCore runs the same workload on every available host core.
func ParallelCore(b *testing.B) { parallelCoreAt(b, runtime.GOMAXPROCS(0)) }

// Experiment regenerates one end-to-end experiment table (the §V-D
// fault-handling microbenchmark) at test scale per iteration.
func Experiment(b *testing.B) {
	b.ReportAllocs()
	e, ok := exper.ByID("faults")
	if !ok {
		b.Fatal("unknown experiment \"faults\"")
	}
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration: memoized cells would otherwise make
		// every iteration after the first free.
		e.Run(exper.NewRunner(0), apps.SizeTest)
	}
}

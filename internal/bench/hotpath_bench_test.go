package bench

import "testing"

// The Benchmark* wrappers make the shared hot-path benchmarks visible to
// `go test -bench` (and the CI -benchtime=1x smoke run); cmd/dexhotpath
// runs the same bodies through testing.Benchmark to emit BENCH_hotpath.json.

func BenchmarkFaultFastPath(b *testing.B)      { FaultFastPath(b) }
func BenchmarkFaultSlowPath(b *testing.B)      { FaultSlowPath(b) }
func BenchmarkEventDispatch(b *testing.B)      { EventDispatch(b) }
func BenchmarkExperiment(b *testing.B)         { Experiment(b) }
func BenchmarkParallelCoreSerial(b *testing.B) { ParallelCoreSerial(b) }
func BenchmarkParallelCore(b *testing.B)       { ParallelCore(b) }

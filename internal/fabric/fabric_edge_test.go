package fabric

import (
	"testing"
	"testing/quick"
	"time"

	"dex/internal/sim"
)

func TestChunksForBoundaries(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, testParams(2))
	tests := []struct {
		size, want int
	}{
		{0, 1}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {8193, 3},
	}
	for _, tt := range tests {
		if got := net.chunksFor(tt.size); got != tt.want {
			t.Errorf("chunksFor(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestPageThenSmallStaysOrdered(t *testing.T) {
	// A small message posted right after a page transfer on the same
	// connection must be handled after the page data has landed.
	eng := sim.NewEngine(1)
	net := New(eng, testParams(2))
	var pr *PageRecv
	var order []string
	var requester *sim.Task
	net.SetHandler(0, func(src int, m Message) {
		eng.Spawn("serve", func(tk *sim.Task) {
			page := make([]byte, 4096)
			net.SendPage(tk, 0, 1, pr, page, testMsg{tag: "page-reply", size: 48})
			net.Send(tk, 0, 1, testMsg{tag: "later", size: 32})
		})
	})
	net.SetHandler(1, func(src int, m Message) {
		tag := m.(testMsg).tag
		if tag == "page-reply" && pr.data == nil {
			t.Error("reply handled before page data landed")
		}
		order = append(order, tag)
		requester.Unpark()
	})
	requester = eng.Spawn("req", func(tk *sim.Task) {
		pr = net.PreparePageRecv(tk, 0, 1)
		net.Send(tk, 1, 0, testMsg{tag: "request", size: 64})
		for len(order) < 2 {
			tk.Park("replies")
		}
		pr.Claim(tk)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if order[0] != "page-reply" || order[1] != "later" {
		t.Fatalf("order = %v", order)
	}
}

func TestRNRDrainPreservesFIFO(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams(2)
	p.RecvPoolSlots = 1
	p.RecvCPU = 50 * time.Microsecond
	net := New(eng, p)
	var got []string
	net.SetHandler(1, func(src int, m Message) { got = append(got, m.(testMsg).tag) })
	eng.Spawn("s", func(tk *sim.Task) {
		for _, tag := range []string{"a", "b", "c", "d", "e"} {
			net.Send(tk, 0, 1, testMsg{size: 32, tag: tag})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c", "d", "e"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RNR drain reordered: %v", got)
		}
	}
}

func TestVerbOnlyLargeMessageConsumesChunks(t *testing.T) {
	_, _, hyStats := fetchOnce(t, HybridSink, true)
	if hyStats.SendPoolWaits != 0 {
		t.Fatalf("hybrid consumed send chunks for page data: %+v", hyStats)
	}
	_, _, voStats := fetchOnce(t, VerbOnly, true)
	// Verb-only pushes the page through the small-message path: it pays the
	// staging copies the hybrid sink avoids on the send side, but the page
	// payload stays under PageBytes — small-message accounting is identical
	// across modes (no double count).
	if voStats.MemcpyBytes <= hyStats.MemcpyBytes {
		t.Fatalf("verb-only memcpy bytes %d not larger than hybrid %d",
			voStats.MemcpyBytes, hyStats.MemcpyBytes)
	}
	if voStats.SmallBytes != hyStats.SmallBytes {
		t.Fatalf("small-message bytes differ across modes: verb-only %d, hybrid %d",
			voStats.SmallBytes, hyStats.SmallBytes)
	}
	if voStats.PageBytes != hyStats.PageBytes {
		t.Fatalf("page bytes differ across modes: verb-only %d, hybrid %d",
			voStats.PageBytes, hyStats.PageBytes)
	}
}

func TestPageRecvDoubleReleaseIdempotent(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams(2)
	p.SinkChunks = 1
	net := New(eng, p)
	eng.Spawn("r", func(tk *sim.Task) {
		pr := net.PreparePageRecv(tk, 0, 1)
		pr.Release()
		pr.Release() // second release must not double-free the sink chunk
		pr2 := net.PreparePageRecv(tk, 0, 1)
		pr2.Release()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestQuickBusInvariants property-tests the bus: completion times are
// monotone in submission order and total busy time equals the sum of
// individual durations.
func TestQuickBusInvariants(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		eng := sim.NewEngine(1)
		bus := sim.NewBus(eng, "b", 1e9)
		var last time.Duration
		total := uint64(0)
		ok := true
		eng.Spawn("driver", func(tk *sim.Task) {
			for _, s := range sizes {
				n := int(s)
				finish := bus.Occupy(n)
				if finish < last {
					ok = false
				}
				if n > 0 {
					last = finish
				}
				total += uint64(n)
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return ok && bus.Bytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSemaphoreNeverOversubscribed property-tests the FIFO semaphore
// under random hold times.
func TestQuickSemaphoreNeverOversubscribed(t *testing.T) {
	f := func(holds []uint8, units uint8) bool {
		n := int(units%4) + 1
		eng := sim.NewEngine(1)
		sem := sim.NewSemaphore("s", n)
		inUse, maxUse := 0, 0
		for _, h := range holds {
			h := h
			eng.Spawn("w", func(tk *sim.Task) {
				sem.Acquire(tk)
				inUse++
				if inUse > maxUse {
					maxUse = inUse
				}
				tk.Sleep(time.Duration(h) * time.Microsecond)
				inUse--
				sem.Release()
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return maxUse <= n && sem.InUse() == 0 && sem.Waiting() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package fabric

import (
	"testing"
	"time"

	"dex/internal/sim"
)

type testMsg struct {
	size int
	tag  string
}

func (m testMsg) Size() int { return m.size }

func testParams(nodes int) Params {
	p := DefaultParams(nodes)
	return p
}

func TestSmallMessageDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, testParams(2))
	var gotSrc int
	var gotTag string
	var at time.Duration
	net.SetHandler(1, func(src int, m Message) {
		gotSrc = src
		gotTag = m.(testMsg).tag
		at = eng.Now()
	})
	net.SetHandler(0, func(src int, m Message) {})
	eng.Spawn("sender", func(tk *sim.Task) {
		net.Send(tk, 0, 1, testMsg{size: 64, tag: "hello"})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotSrc != 0 || gotTag != "hello" {
		t.Fatalf("delivery src=%d tag=%q", gotSrc, gotTag)
	}
	p := testParams(2)
	min := p.SendCPU + p.LinkLatency + p.RecvCPU
	if at < min {
		t.Fatalf("delivered at %v, want >= %v", at, min)
	}
	if at > min+2*time.Microsecond {
		t.Fatalf("delivered at %v, implausibly late (min %v)", at, min)
	}
	st := net.Stats()
	if st.SmallSends != 1 || st.SmallBytes != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPerConnectionFIFO(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, testParams(2))
	var got []string
	net.SetHandler(1, func(src int, m Message) { got = append(got, m.(testMsg).tag) })
	eng.Spawn("sender", func(tk *sim.Task) {
		for _, tag := range []string{"a", "b", "c", "d"} {
			net.Send(tk, 0, 1, testMsg{size: 64, tag: tag})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestSendPoolBackpressure(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams(2)
	p.SendPoolChunks = 2
	p.LinkBandwidth = 1e6 // slow link keeps chunks held long
	net := New(eng, p)
	net.SetHandler(1, func(src int, m Message) {})
	eng.Spawn("sender", func(tk *sim.Task) {
		for i := 0; i < 6; i++ {
			net.Send(tk, 0, 1, testMsg{size: 1024})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if net.Stats().SendPoolWaits == 0 {
		t.Fatal("expected send-pool waits on a slow link with 2 chunks")
	}
	if net.Stats().SmallSends != 6 {
		t.Fatalf("SmallSends = %d, want 6", net.Stats().SmallSends)
	}
}

func TestReceiverNotReadyStall(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams(2)
	p.RecvPoolSlots = 1
	p.RecvCPU = 100 * time.Microsecond // buffer held a long time
	net := New(eng, p)
	count := 0
	net.SetHandler(1, func(src int, m Message) { count++ })
	eng.Spawn("sender", func(tk *sim.Task) {
		for i := 0; i < 4; i++ {
			net.Send(tk, 0, 1, testMsg{size: 64})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 4 {
		t.Fatalf("delivered %d, want 4", count)
	}
	if net.Stats().RecvRNRStalls == 0 {
		t.Fatal("expected RNR stalls with 1 posted receive")
	}
}

// fetchOnce models the DSM request/response pattern: a requester on node 1
// prepares a landing zone, asks node 0, node 0 sends the page, requester
// claims the data. It returns the virtual duration and the data.
func fetchOnce(t *testing.T, mode PageMode, withData bool) (time.Duration, []byte, Stats) {
	t.Helper()
	eng := sim.NewEngine(1)
	p := testParams(2)
	p.Mode = mode
	net := New(eng, p)
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	var pr *PageRecv
	var requester *sim.Task
	var got []byte
	var elapsed time.Duration
	replied := false

	net.SetHandler(0, func(src int, m Message) {
		// Origin: serve the page (or an ownership-only grant).
		eng.Spawn("origin-handler", func(tk *sim.Task) {
			if withData {
				net.SendPage(tk, 0, 1, pr, page, testMsg{size: 48, tag: "reply"})
			} else {
				net.Send(tk, 0, 1, testMsg{size: 48, tag: "grant"})
			}
		})
	})
	net.SetHandler(1, func(src int, m Message) {
		replied = true
		requester.Unpark()
	})

	requester = eng.Spawn("requester", func(tk *sim.Task) {
		start := tk.Now()
		pr = net.PreparePageRecv(tk, 0, 1)
		net.Send(tk, 1, 0, testMsg{size: 64, tag: "request"})
		for !replied {
			tk.Park("awaiting page reply")
		}
		if withData {
			got = pr.Claim(tk)
		} else {
			pr.Release()
		}
		elapsed = tk.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return elapsed, got, net.Stats()
}

func TestPageFetchHybrid(t *testing.T) {
	elapsed, got, st := fetchOnce(t, HybridSink, true)
	if len(got) != 4096 || got[100] != 100 {
		t.Fatalf("bad page data (len %d)", len(got))
	}
	if st.RDMAWrites != 1 || st.PageSends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MemcpyBytes != 4096 {
		t.Fatalf("MemcpyBytes = %d, want one sink copy", st.MemcpyBytes)
	}
	// End-to-end raw transport for a 4 KB page should be single-digit µs;
	// the paper's 13.6µs includes protocol software costs layered above.
	if elapsed < 3*time.Microsecond || elapsed > 15*time.Microsecond {
		t.Fatalf("hybrid fetch = %v, want 3µs..15µs", elapsed)
	}
}

func TestPageFetchPerPageRegistrationSlower(t *testing.T) {
	hy, _, _ := fetchOnce(t, HybridSink, true)
	pp, got, st := fetchOnce(t, PerPageReg, true)
	if len(got) != 4096 {
		t.Fatal("bad page data")
	}
	if st.Registrations != 1 {
		t.Fatalf("Registrations = %d, want 1", st.Registrations)
	}
	if st.MemcpyBytes != 0 {
		t.Fatalf("PerPageReg should be zero-copy, MemcpyBytes = %d", st.MemcpyBytes)
	}
	if pp <= hy {
		t.Fatalf("per-page registration (%v) should be slower than hybrid (%v)", pp, hy)
	}
}

func TestPageFetchVerbOnly(t *testing.T) {
	vo, got, st := fetchOnce(t, VerbOnly, true)
	if len(got) != 4096 || got[4095] != byte(4095%256) {
		t.Fatal("bad page data")
	}
	if st.RDMAWrites != 0 {
		t.Fatalf("VerbOnly must not RDMA, stats = %+v", st)
	}
	if st.MemcpyBytes != 8192 {
		t.Fatalf("VerbOnly should copy on both sides, MemcpyBytes = %d", st.MemcpyBytes)
	}
	hy, _, _ := fetchOnce(t, HybridSink, true)
	if vo <= hy {
		t.Fatalf("verb-only (%v) should be slower than hybrid (%v)", vo, hy)
	}
}

func TestOwnershipOnlyGrantReleasesSink(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams(2)
	p.SinkChunks = 1
	net := New(eng, p)
	net.SetHandler(0, func(src int, m Message) {})
	net.SetHandler(1, func(src int, m Message) {})
	eng.Spawn("requester", func(tk *sim.Task) {
		for i := 0; i < 3; i++ {
			pr := net.PreparePageRecv(tk, 0, 1)
			pr.Release()
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v (sink chunk leak?)", err)
	}
	if net.Stats().SinkWaits != 0 {
		t.Fatalf("SinkWaits = %d, want 0 after releases", net.Stats().SinkWaits)
	}
}

func TestSinkExhaustionBlocks(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams(2)
	p.SinkChunks = 1
	net := New(eng, p)
	net.SetHandler(0, func(src int, m Message) {})
	net.SetHandler(1, func(src int, m Message) {})
	var first *PageRecv
	eng.Spawn("a", func(tk *sim.Task) {
		first = net.PreparePageRecv(tk, 0, 1)
	})
	eng.Spawn("b", func(tk *sim.Task) {
		tk.Sleep(time.Microsecond)
		pr := net.PreparePageRecv(tk, 0, 1) // blocks until first released
		pr.Release()
	})
	eng.Spawn("releaser", func(tk *sim.Task) {
		tk.Sleep(10 * time.Microsecond)
		first.Release()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if net.Stats().SinkWaits != 1 {
		t.Fatalf("SinkWaits = %d, want 1", net.Stats().SinkWaits)
	}
}

func TestPageRecvReuseIsRejected(t *testing.T) {
	_, _, _ = fetchOnce(t, HybridSink, true) // sanity: normal path works
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on PageRecv reuse")
		}
	}()
	pr := &PageRecv{mode: HybridSink, used: true}
	pr.Claim(nil)
}

func TestSelfSendPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, testParams(2))
	eng.Spawn("bad", func(tk *sim.Task) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on self-send")
			}
			panic("stop") // abort the task cleanly for the engine
		}()
		net.Send(tk, 0, 0, testMsg{size: 8})
	})
	_ = eng.Run() // the re-panic surfaces as a task failure; ignore it
}

func TestCrossPairIsolation(t *testing.T) {
	// Traffic between nodes 0->1 must not delay traffic 2->3.
	eng := sim.NewEngine(1)
	p := testParams(4)
	p.LinkBandwidth = 1e6 // make serialization visible
	net := New(eng, p)
	var at01, at23 time.Duration
	net.SetHandler(1, func(src int, m Message) { at01 = eng.Now() })
	net.SetHandler(3, func(src int, m Message) { at23 = eng.Now() })
	eng.Spawn("s0", func(tk *sim.Task) {
		net.Send(tk, 0, 1, testMsg{size: 100000}) // 100ms serialization
	})
	eng.Spawn("s2", func(tk *sim.Task) {
		net.Send(tk, 2, 3, testMsg{size: 100})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at23 >= at01 {
		t.Fatalf("independent pair delayed: 2->3 at %v, 0->1 at %v", at23, at01)
	}
}

package fabric

import (
	"fmt"
	"testing"
	"time"

	"dex/internal/chaos"
	"dex/internal/sim"
)

// expMsg is an expendable (droppable/duplicable) test message.
type expMsg struct {
	size int
	seq  int
}

func (m expMsg) Size() int        { return m.size }
func (m expMsg) ChaosExpendable() {}

func chaosNet(t *testing.T, nodes int, plan *chaos.Plan) (*sim.Engine, *Network, *chaos.Injector) {
	t.Helper()
	if err := plan.Validate(nodes); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	eng := sim.NewEngine(1)
	net := New(eng, testParams(nodes))
	inj := chaos.NewInjector(plan, nodes)
	net.SetChaos(inj)
	return eng, net, inj
}

// Under certain duplication, every message arrives twice, per-connection
// order is preserved among the surviving stream (a dup follows its original
// immediately), and the small-byte accounting still reflects sender-side
// sends only.
func TestChaosDuplicationKeepsOrderAndAccounting(t *testing.T) {
	plan := &chaos.Plan{Seed: 3, Dup: []chaos.LinkRule{{Src: chaos.Any, Dst: chaos.Any, Prob: 1}}}
	eng, net, inj := chaosNet(t, 2, plan)
	const msgs = 16
	var got []int
	net.SetHandler(1, func(src int, m Message) { got = append(got, m.(expMsg).seq) })
	eng.Spawn("sender", func(tk *sim.Task) {
		for i := 0; i < msgs; i++ {
			net.Send(tk, 0, 1, expMsg{size: 64, seq: i})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2*msgs {
		t.Fatalf("delivered %d messages, want %d (each duplicated)", len(got), 2*msgs)
	}
	for i, seq := range got {
		if seq != i/2 {
			t.Fatalf("delivery order broken at %d: %v", i, got)
		}
	}
	st := net.Stats()
	if st.SmallSends != msgs || st.SmallBytes != msgs*64 {
		t.Fatalf("sender-side accounting changed by dup: %+v", st)
	}
	if inj.Stats().Duplicated != msgs {
		t.Fatalf("Duplicated = %d, want %d", inj.Stats().Duplicated, msgs)
	}
}

// Delay jitter may reorder nothing: the per-connection FIFO clamp must keep
// delivery order identical to send order even when every message draws a
// random extra latency.
func TestChaosDelayPreservesPerConnectionOrder(t *testing.T) {
	plan := &chaos.Plan{
		Seed: 7,
		Delay: []chaos.DelayRule{{
			Src: chaos.Any, Dst: chaos.Any, Prob: 1,
			Jitter: chaos.Duration(200 * time.Microsecond),
		}},
	}
	eng, net, _ := chaosNet(t, 3, plan)
	const msgs = 32
	var got []int
	net.SetHandler(1, func(src int, m Message) { got = append(got, m.(expMsg).seq) })
	net.SetHandler(2, func(src int, m Message) {})
	eng.Spawn("sender", func(tk *sim.Task) {
		for i := 0; i < msgs; i++ {
			net.Send(tk, 0, 1, expMsg{size: 64, seq: i})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d, want %d (delay must not lose messages)", len(got), msgs)
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("jitter reordered connection stream: %v", got)
		}
	}
}

// Byte conservation under drops: every byte the sender pushed is either
// delivered to a handler or counted in the injector's dropped-bytes ledger.
func TestChaosDropByteConservation(t *testing.T) {
	plan := &chaos.Plan{Seed: 11, Drop: []chaos.LinkRule{{Src: chaos.Any, Dst: chaos.Any, Prob: 0.4}}}
	eng, net, inj := chaosNet(t, 2, plan)
	var deliveredBytes uint64
	var delivered int
	net.SetHandler(1, func(src int, m Message) {
		deliveredBytes += uint64(m.Size())
		delivered++
	})
	const msgs = 64
	eng.Spawn("sender", func(tk *sim.Task) {
		for i := 0; i < msgs; i++ {
			net.Send(tk, 0, 1, expMsg{size: 100 + i, seq: i})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := net.Stats()
	cs := inj.Stats()
	if cs.Dropped == 0 || uint64(delivered) != msgs-cs.Dropped {
		t.Fatalf("delivered %d of %d with %d drops", delivered, msgs, cs.Dropped)
	}
	if deliveredBytes+cs.DroppedBytes != st.SmallBytes {
		t.Fatalf("bytes not conserved: delivered %d + dropped %d != sent %d",
			deliveredBytes, cs.DroppedBytes, st.SmallBytes)
	}
}

// Page transfers fate-share one verdict: with a certain drop rule, neither
// the data placement nor its reply arrives; with duplication both arrive
// twice and the reply still follows its data.
func TestChaosPageUnitFateSharing(t *testing.T) {
	for _, mode := range []PageMode{HybridSink, PerPageReg, VerbOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			plan := &chaos.Plan{Seed: 5, Drop: []chaos.LinkRule{{
				Src: chaos.Any, Dst: chaos.Any, Prob: 1, To: chaos.Duration(time.Second),
			}}}
			eng := sim.NewEngine(1)
			params := testParams(2)
			params.Mode = mode
			net := New(eng, params)
			net.SetChaos(chaos.NewInjector(plan, 2))
			replies := 0
			net.SetHandler(0, func(src int, m Message) { replies++ })
			net.SetHandler(1, func(src int, m Message) { replies++ })
			data := make([]byte, 4096)
			var pr *PageRecv
			eng.Spawn("requester", func(tk *sim.Task) {
				pr = net.PreparePageRecv(tk, 1, 0)
			})
			eng.SpawnAfter("responder", 10*time.Microsecond, func(tk *sim.Task) {
				net.SendPage(tk, 1, 0, pr, data, expMsg{size: 32, seq: 0})
			})
			if err := eng.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if replies != 0 {
				t.Fatalf("dropped page unit still delivered %d messages", replies)
			}
		})
	}
}

func TestChaosPageDupDataBeforeReply(t *testing.T) {
	plan := &chaos.Plan{Seed: 5, Dup: []chaos.LinkRule{{Src: chaos.Any, Dst: chaos.Any, Prob: 1}}}
	eng, net, _ := chaosNet(t, 2, plan)
	data := []byte{42}
	var pr *PageRecv
	arrivals := 0
	net.SetHandler(0, func(src int, m Message) {
		if pr.Peek() == nil {
			t.Error("reply arrived before page data")
		}
		arrivals++
	})
	net.SetHandler(1, func(src int, m Message) {})
	eng.Spawn("requester", func(tk *sim.Task) {
		pr = net.PreparePageRecv(tk, 1, 0)
	})
	eng.SpawnAfter("responder", time.Microsecond, func(tk *sim.Task) {
		net.SendPageBuf(tk, 1, 0, pr, data, expMsg{size: 32, seq: 0}, make([]byte, 1))
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if arrivals != 2 {
		t.Fatalf("duplicated page unit delivered %d replies, want 2", arrivals)
	}
}

// Messages to and from a crashed node vanish; everyone else's traffic is
// untouched.
func TestChaosDeadNodeTraffic(t *testing.T) {
	eng, net, inj := chaosNet(t, 3, &chaos.Plan{Crashes: []chaos.Crash{{Node: 2, At: 0}}})
	var got []string
	for n := 0; n < 3; n++ {
		n := n
		net.SetHandler(n, func(src int, m Message) {
			got = append(got, fmt.Sprintf("%d<-%d", n, src))
		})
	}
	eng.Spawn("t", func(tk *sim.Task) {
		net.Send(tk, 0, 1, expMsg{size: 8, seq: 0})
		inj.MarkDead(2)
		net.Send(tk, 0, 2, expMsg{size: 8, seq: 1}) // to the dead node
		net.Send(tk, 2, 1, expMsg{size: 8, seq: 2}) // from the dead node
		net.Send(tk, 1, 0, expMsg{size: 8, seq: 3})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != "1<-0" || got[1] != "0<-1" {
		t.Fatalf("deliveries = %v, want only the live pair", got)
	}
	if inj.Stats().Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", inj.Stats().Dropped)
	}
}

// An RNR storm stalls deliveries during its window and drains them, in
// order, when it ends.
func TestChaosRNRStormStallsAndDrains(t *testing.T) {
	storm := chaos.RNRStorm{Node: 1, From: chaos.Duration(0), To: chaos.Duration(500 * time.Microsecond)}
	eng, net, _ := chaosNet(t, 2, &chaos.Plan{RNRStorms: []chaos.RNRStorm{storm}})
	var got []int
	var firstAt time.Duration
	net.SetHandler(1, func(src int, m Message) {
		if len(got) == 0 {
			firstAt = eng.Now()
		}
		got = append(got, m.(expMsg).seq)
	})
	eng.Spawn("sender", func(tk *sim.Task) {
		for i := 0; i < 8; i++ {
			net.Send(tk, 0, 1, expMsg{size: 64, seq: i})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d, want 8 (storm must not lose messages)", len(got))
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("storm drain out of order: %v", got)
		}
	}
	if firstAt < storm.To.D() {
		t.Fatalf("first delivery at %v, inside the storm window (ends %v)", firstAt, storm.To.D())
	}
}

// A healed partition delivers everything it held, in order.
func TestChaosPartitionHoldsThenDelivers(t *testing.T) {
	part := chaos.Partition{A: []int{0}, B: []int{1}, From: 0, To: chaos.Duration(time.Millisecond)}
	eng, net, _ := chaosNet(t, 2, &chaos.Plan{Partitions: []chaos.Partition{part}})
	var got []int
	var firstAt time.Duration
	net.SetHandler(1, func(src int, m Message) {
		if len(got) == 0 {
			firstAt = eng.Now()
		}
		got = append(got, m.(expMsg).seq)
	})
	eng.Spawn("sender", func(tk *sim.Task) {
		for i := 0; i < 4; i++ {
			net.Send(tk, 0, 1, expMsg{size: 64, seq: i})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4", len(got))
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("post-heal delivery out of order: %v", got)
		}
	}
	if firstAt < part.To.D() {
		t.Fatalf("first delivery at %v, before the partition healed at %v", firstAt, part.To.D())
	}
}

// A nil injector and an attached-but-empty plan must not change behaviour.
func TestChaosEmptyPlanIsInert(t *testing.T) {
	run := func(attach bool) (uint64, time.Duration) {
		eng := sim.NewEngine(1)
		net := New(eng, testParams(2))
		if attach {
			net.SetChaos(chaos.NewInjector(&chaos.Plan{Seed: 99}, 2))
		}
		var lastAt time.Duration
		net.SetHandler(1, func(src int, m Message) { lastAt = eng.Now() })
		eng.Spawn("sender", func(tk *sim.Task) {
			for i := 0; i < 10; i++ {
				net.Send(tk, 0, 1, expMsg{size: 64, seq: i})
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return net.Stats().SmallBytes, lastAt
	}
	b1, t1 := run(false)
	b2, t2 := run(true)
	if b1 != b2 || t1 != t2 {
		t.Fatalf("empty plan changed behaviour: (%d, %v) vs (%d, %v)", b1, t1, b2, t2)
	}
}

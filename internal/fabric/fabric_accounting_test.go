package fabric

import (
	"testing"
	"time"

	"dex/internal/sim"
)

// TestPageAccountingConservation pins the canonical byte accounting across
// all three page modes: the page payload is counted once, under
// PageSends/PageBytes, and SmallSends/SmallBytes carry only the non-page
// message bytes, so PageBytes+SmallBytes equals the bytes the links carried.
// (The VerbOnly path used to count the page payload under both PageBytes and
// SmallBytes, double-counting it in the A2 ablation.)
func TestPageAccountingConservation(t *testing.T) {
	const (
		requestBytes = 64
		replyBytes   = 48
		pageBytes    = 4096
	)
	for _, mode := range []PageMode{HybridSink, PerPageReg, VerbOnly} {
		_, got, st := fetchOnce(t, mode, true)
		if len(got) != pageBytes {
			t.Fatalf("%v: page data len = %d", mode, len(got))
		}
		if st.PageSends != 1 || st.PageBytes != pageBytes {
			t.Errorf("%v: page accounting = %d sends / %d bytes, want 1 / %d",
				mode, st.PageSends, st.PageBytes, pageBytes)
		}
		if st.SmallSends != 2 || st.SmallBytes != requestBytes+replyBytes {
			t.Errorf("%v: small accounting = %d sends / %d bytes, want 2 / %d",
				mode, st.SmallSends, st.SmallBytes, requestBytes+replyBytes)
		}
		wire := st.SmallBytes + st.PageBytes
		if want := uint64(requestBytes + replyBytes + pageBytes); wire != want {
			t.Errorf("%v: bytes not conserved: SmallBytes+PageBytes = %d, want %d",
				mode, wire, want)
		}
	}
}

// TestPageDataCannotOvertakeStalledMessage pins per-connection FIFO between
// VERB messages and RDMA page data: page data posted after a small message
// must not become visible before that message is delivered, even when the
// message is stalled on receiver-not-ready. (The HybridSink path used to
// schedule the data arrival with a raw engine timer that bypassed the
// connection's ordering point.)
func TestPageDataCannotOvertakeStalledMessage(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams(2)
	p.RecvPoolSlots = 1
	p.RecvCPU = 50 * time.Microsecond // hold the only receive buffer long
	net := New(eng, p)

	page := make([]byte, 4096)
	var pr *PageRecv
	var order []string
	var dataAtM2, dataAtReply bool
	net.SetHandler(0, func(src int, m Message) {})
	net.SetHandler(1, func(src int, m Message) {
		tag := m.(testMsg).tag
		order = append(order, tag)
		switch tag {
		case "m2":
			dataAtM2 = pr.data != nil
		case "reply":
			dataAtReply = pr.data != nil
		}
	})

	eng.Spawn("receiver-prep", func(tk *sim.Task) {
		pr = net.PreparePageRecv(tk, 0, 1)
	})
	eng.Spawn("sender", func(tk *sim.Task) {
		tk.Sleep(time.Microsecond) // run after the receiver prepared pr
		// m1 consumes the only receive buffer; m2 stalls on RNR; the page
		// transfer is posted last and must stay behind both.
		net.Send(tk, 0, 1, testMsg{size: 64, tag: "m1"})
		net.Send(tk, 0, 1, testMsg{size: 64, tag: "m2"})
		net.SendPage(tk, 0, 1, pr, page, testMsg{size: 48, tag: "reply"})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"m1", "m2", "reply"}
	if len(order) != len(want) {
		t.Fatalf("deliveries = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", order, want)
		}
	}
	if net.Stats().RecvRNRStalls == 0 {
		t.Fatal("scenario did not exercise receiver-not-ready stalls")
	}
	if dataAtM2 {
		t.Fatal("page data overtook a small message stalled ahead of it")
	}
	if !dataAtReply {
		t.Fatal("page data not visible when its reply was handled")
	}
}

// Package fabric models the inter-node messaging layer of DeX (§III-E of the
// paper): an InfiniBand-like interconnect with per node-pair Reliable
// Connection channels, VERB-based small messages drawing from DMA-ready send
// and receive buffer pools, and RDMA-based page transfers through a
// pre-registered "RDMA sink" with a single copy to the final destination.
//
// All costs are charged in virtual time on a sim.Engine: per-message CPU
// overhead, buffer-pool backpressure, per-link serialization at the
// configured bandwidth, and propagation latency. Three page-transfer modes
// are provided so the paper's hybrid design can be compared against the
// alternatives it rules out (per-page dynamic registration, and pushing page
// data through the VERB path).
package fabric

import (
	"fmt"
	"sync/atomic"
	"time"

	"dex/internal/chaos"
	"dex/internal/obs"
	"dex/internal/sim"
)

// PageMode selects how page-sized payloads move between nodes.
type PageMode int

const (
	// HybridSink is the paper's design: RDMA into a pre-registered chunk
	// pool at the receiver, then one memcpy to the final destination.
	HybridSink PageMode = iota + 1
	// PerPageReg dynamically registers the destination page for every
	// transfer: zero-copy but pays the registration cost each time.
	PerPageReg
	// VerbOnly pushes page data through the small-message path, consuming
	// send-pool chunks and copying on both sides.
	VerbOnly
)

func (m PageMode) String() string {
	switch m {
	case HybridSink:
		return "hybrid-sink"
	case PerPageReg:
		return "per-page-registration"
	case VerbOnly:
		return "verb-only"
	default:
		return fmt.Sprintf("PageMode(%d)", int(m))
	}
}

// Params configures the interconnect. DefaultParams returns values
// calibrated against the measurements reported in the paper (§V-D).
type Params struct {
	Nodes int

	// LinkBandwidth is the per-direction bandwidth of each node-pair link
	// in bytes per second.
	LinkBandwidth float64
	// LinkLatency is the one-way propagation latency.
	LinkLatency time.Duration

	// SendCPU is the per-message CPU cost of posting a VERB send.
	SendCPU time.Duration
	// RecvCPU is the per-message cost of completion handling at the
	// receiver before the handler runs and the buffer is reposted.
	RecvCPU time.Duration

	// ChunkSize is the size of one send-pool or sink chunk in bytes.
	ChunkSize int
	// SendPoolChunks is the number of send-buffer chunks per connection.
	SendPoolChunks int
	// RecvPoolSlots is the number of posted receives per connection.
	RecvPoolSlots int
	// SinkChunks is the number of RDMA-sink chunks per connection.
	SinkChunks int

	// MemcpyBandwidth is the local copy bandwidth in bytes per second,
	// used for sink-to-destination and VERB staging copies.
	MemcpyBandwidth float64
	// RegisterCost is the cost of one dynamic RDMA region association
	// (PerPageReg mode only).
	RegisterCost time.Duration
	// RDMAPostCPU is the CPU cost of posting one RDMA write.
	RDMAPostCPU time.Duration

	// Mode selects the page-transfer strategy.
	Mode PageMode
}

// DefaultParams returns interconnect parameters calibrated to the paper's
// testbed: 56 Gbps InfiniBand, ~1.3 µs one-way latency, and a 4 KB page
// retrieval cost of ~13.6 µs end to end.
func DefaultParams(nodes int) Params {
	return Params{
		Nodes:           nodes,
		LinkBandwidth:   56e9 / 8 * 0.85, // 56 Gbps less framing overhead
		LinkLatency:     3500 * time.Nanosecond,
		SendCPU:         700 * time.Nanosecond,
		RecvCPU:         1000 * time.Nanosecond,
		ChunkSize:       4096,
		SendPoolChunks:  64,
		RecvPoolSlots:   64,
		SinkChunks:      64,
		MemcpyBandwidth: 3e9,
		RegisterCost:    4500 * time.Nanosecond,
		RDMAPostCPU:     1200 * time.Nanosecond,
		Mode:            HybridSink,
	}
}

// Message is a unit of inter-node communication. Implementations live in the
// protocol layers; the fabric only needs the wire size.
type Message interface {
	Size() int
}

// Handler processes a message delivered to a node. Handlers run in event
// context and must not block; blocking work must be handed to a task.
type Handler func(src int, m Message)

// Expendable marks messages the chaos layer may drop or duplicate: idempotent
// protocol traffic whose sender retransmits on timeout and whose receiver
// deduplicates. Messages without the marker (e.g. core's execution-context
// envelopes, which run arbitrary closures exactly once) are never dropped or
// duplicated — only delayed or held by partitions, which is safe for every
// message class.
type Expendable interface {
	Message
	ChaosExpendable()
}

func expendable(m Message) bool {
	_, ok := m.(Expendable)
	return ok
}

// GlobalDelivery marks messages whose receive-side processing must run on the
// simulator's global lane rather than the destination node's lane: handlers
// that touch cross-cutting state (core's execution-context envelopes run
// arbitrary closures against process-wide structures). Global-lane events
// serialize their window, so such handlers may safely touch any node's state.
type GlobalDelivery interface {
	Message
	DeliverGlobal()
}

func deliveryLane(m Message, dst int) int {
	if _, ok := m.(GlobalDelivery); ok {
		return sim.GlobalLane
	}
	return dst
}

// Stats aggregates fabric activity counters.
type Stats struct {
	SmallSends    uint64
	SmallBytes    uint64
	PageSends     uint64
	PageBytes     uint64
	RDMAWrites    uint64
	Registrations uint64
	MemcpyBytes   uint64
	SendPoolWaits uint64
	RecvRNRStalls uint64
	SinkWaits     uint64
}

// netStats is the live counter set. Counters are bumped from whichever lane
// executes the send or receive path, so they are atomic; every counter is a
// pure sum and therefore independent of bump order — Stats snapshots stay
// byte-identical at any core count.
type netStats struct {
	smallSends    atomic.Uint64
	smallBytes    atomic.Uint64
	pageSends     atomic.Uint64
	pageBytes     atomic.Uint64
	rdmaWrites    atomic.Uint64
	registrations atomic.Uint64
	memcpyBytes   atomic.Uint64
	sendPoolWaits atomic.Uint64
	recvRNRStalls atomic.Uint64
	sinkWaits     atomic.Uint64
}

// Network is the simulated interconnect connecting Params.Nodes nodes with a
// full mesh of RC connections.
type Network struct {
	eng      *sim.Engine
	views    []*sim.Engine // per-node lane views (the root view when lanes are absent)
	gview    *sim.Engine   // global-lane view for envelope delivery
	params   Params
	conns    [][]*conn // conns[src][dst]
	handlers []Handler
	stats    netStats
	rec      *obs.Recorder
	inj      *chaos.Injector
}

// fabricLane offsets the source node into the Perfetto thread id of a
// message span, so each node's timeline shows one receive lane per peer
// below its application threads.
const fabricLane = 1000

// SetRecorder attaches the observability recorder; nil (the default) keeps
// every instrumentation point on its single disabled branch.
func (n *Network) SetRecorder(rec *obs.Recorder) { n.rec = rec }

// SetChaos attaches a fault injector; nil (the default) keeps every
// injection point on a single disabled branch, so a run without chaos is
// byte-identical to one built before the subsystem existed.
func (n *Network) SetChaos(inj *chaos.Injector) { n.inj = inj }

// Chaos returns the attached fault injector, or nil. Protocol layers use it
// both to learn whether retransmission machinery must be armed and as the
// ground truth for node liveness.
func (n *Network) Chaos() *chaos.Injector { return n.inj }

// conn is one directed connection src -> dst. Its fields split into two lane
// ownership groups: the send side (link, sendPool, deliverAt) is only touched
// by the sending path, which runs on src's lane (or on the global lane, which
// serializes); the receive side (posted, rnrQueue, stormDrainAt, sinkPool) is
// only touched by arrival events, which run on dst's lane (or global). Within
// a parallel window each group is therefore confined to one goroutine.
type conn struct {
	link      *sim.Bus
	sendPool  *sim.Semaphore
	sinkPool  *sim.Semaphore
	posted    int
	rnrQueue  []pending
	deliverAt time.Duration // enforces in-order delivery per connection
	// stormDrainAt is the latest scheduled RNR-storm drain; it keeps one
	// storm from scheduling a drain event per stalled message.
	stormDrainAt time.Duration

	// Control-QP receive state. GlobalDelivery messages ride a dedicated
	// control queue pair per connection — its arrivals execute on the global
	// lane and must never be entangled with the data QP's in-order drain
	// (a data completion on the destination lane cannot hand work to the
	// global lane mid-window). The control QP has its own posted receives,
	// so data backlog does not head-of-line-block control traffic; RNR
	// storms and partitions still apply to it.
	deliverAtG    time.Duration
	rnrQueueG     []pending
	stormDrainAtG time.Duration
}

// pending is one in-order connection event: either a VERB message awaiting
// delivery (and possibly a posted receive), or an RDMA data placement. Both
// kinds flow through the same per-connection ordering point, because an RC
// queue pair executes its work queue strictly in order — an RDMA write
// posted after a send may not complete at the receiver before it.
type pending struct {
	src  int
	m    Message
	data func() // non-nil for an RDMA data placement

	// Tracing state, populated only when a recorder is attached: the
	// simulated time the sender entered the fabric (span start), the payload
	// class/size, and the RNR-stall start time once the event queues.
	sentAt  time.Duration
	bytes   int
	page    bool
	stalled bool
	stallAt time.Duration
}

// spanName returns the trace span name for this connection event.
func (p *pending) spanName() string {
	if p.page {
		return "msg.page"
	}
	return "msg.small"
}

// New creates a network. It panics on invalid parameters, since those are
// programming errors in experiment setup.
func New(eng *sim.Engine, p Params) *Network {
	if p.Nodes < 1 {
		panic("fabric: need at least one node")
	}
	if p.ChunkSize <= 0 || p.SendPoolChunks <= 0 || p.RecvPoolSlots <= 0 || p.SinkChunks <= 0 {
		panic("fabric: buffer pool parameters must be positive")
	}
	if p.Mode == 0 {
		p.Mode = HybridSink
	}
	n := &Network{
		eng:      eng,
		gview:    eng.LaneView(sim.GlobalLane),
		params:   p,
		conns:    make([][]*conn, p.Nodes),
		handlers: make([]Handler, p.Nodes),
	}
	// Bind a lane view per node; engines configured without lanes (unit
	// tests, microbenchmarks) fall back to the root view, which schedules
	// everything on the global lane — the classic serial behavior.
	n.views = make([]*sim.Engine, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		if i < eng.Lanes() {
			n.views[i] = eng.LaneView(i)
		} else {
			n.views[i] = eng
		}
	}
	for src := 0; src < p.Nodes; src++ {
		n.conns[src] = make([]*conn, p.Nodes)
		for dst := 0; dst < p.Nodes; dst++ {
			if src == dst {
				continue
			}
			name := fmt.Sprintf("link%d->%d", src, dst)
			n.conns[src][dst] = &conn{
				// The link bus is send-side state: it is bound to the source
				// node's lane view so Occupy reads the clock of the lane the
				// send chain executes on.
				link:     sim.NewBus(n.views[src], name, p.LinkBandwidth),
				sendPool: sim.NewSemaphore("sendpool "+name, p.SendPoolChunks),
				sinkPool: sim.NewSemaphore("sink "+name, p.SinkChunks),
				posted:   p.RecvPoolSlots,
			}
		}
	}
	return n
}

// view returns the lane view for node i.
func (n *Network) view(i int) *sim.Engine { return n.views[i] }

// Lookahead returns the conservative cross-lane latency bound this fabric
// guarantees: no effect of a send reaches another node earlier than the
// one-way link latency after it was posted.
func (n *Network) Lookahead() time.Duration { return n.params.LinkLatency }

// Params returns the network configuration.
func (n *Network) Params() Params { return n.params }

// Stats returns a snapshot of the activity counters.
func (n *Network) Stats() Stats {
	return Stats{
		SmallSends:    n.stats.smallSends.Load(),
		SmallBytes:    n.stats.smallBytes.Load(),
		PageSends:     n.stats.pageSends.Load(),
		PageBytes:     n.stats.pageBytes.Load(),
		RDMAWrites:    n.stats.rdmaWrites.Load(),
		Registrations: n.stats.registrations.Load(),
		MemcpyBytes:   n.stats.memcpyBytes.Load(),
		SendPoolWaits: n.stats.sendPoolWaits.Load(),
		RecvRNRStalls: n.stats.recvRNRStalls.Load(),
		SinkWaits:     n.stats.sinkWaits.Load(),
	}
}

// SetHandler installs the message handler for a node. It must be set before
// any message is sent to that node.
func (n *Network) SetHandler(node int, h Handler) { n.handlers[node] = h }

func (n *Network) conn(src, dst int) *conn {
	if src == dst {
		panic(fmt.Sprintf("fabric: self-send on node %d", src))
	}
	c := n.conns[src][dst]
	if c == nil {
		panic(fmt.Sprintf("fabric: no connection %d->%d", src, dst))
	}
	return c
}

// Send transmits a small (VERB) message from src to dst, charging the
// calling task the posting cost and blocking it if the send buffer pool is
// exhausted. Delivery is asynchronous: Send returns once the message is
// posted, and the destination handler runs after serialization, propagation,
// and receive-completion costs.
func (n *Network) Send(t *sim.Task, src, dst int, m Message) {
	var v chaos.Verdict
	if n.inj != nil {
		v = n.inj.Verdict(t.Engine().Now(), src, dst, m.Size(), expendable(m))
	}
	n.sendWith(t, src, dst, m, v)
}

// sendWith is Send with a pre-decided chaos verdict; SendPageBuf uses it to
// fate-share one verdict between an RDMA placement and its completion
// message. Whatever the verdict, the sender pays identical costs — a fault
// is invisible from the sending side until a timeout notices it.
func (n *Network) sendWith(t *sim.Task, src, dst int, m Message, v chaos.Verdict) {
	c := n.conn(src, dst)
	// sv is the lane the send chain executes on: the sending task's lane
	// (the source node's lane for application threads, the global lane for
	// core worker tasks — which serialize, so touching src's send-side conn
	// state from there is safe).
	sv := t.Engine()
	p := pending{src: src, m: m}
	if n.rec != nil {
		p.sentAt = sv.Now()
		p.bytes = m.Size()
	}
	t.Sleep(n.params.SendCPU)
	chunks := n.chunksFor(m.Size())
	n.acquireSendChunks(t, c, chunks)
	n.stats.smallSends.Add(1)
	n.stats.smallBytes.Add(uint64(m.Size()))
	serDone := c.link.Occupy(m.Size())
	// The DMA-ready buffer is reclaimed by the pool when the send completes.
	sv.After(serDone-sv.Now(), func() {
		for i := 0; i < chunks; i++ {
			c.sendPool.Release()
		}
	})
	if v.Drop {
		if n.rec != nil {
			// Chaos verdict spans record on the sending context's lane — the
			// lane this event executes on.
			n.rec.OnLane(sv.Lane()).SpanAt("chaos", "drop", dst, fabricLane+src, sv.Now(), 0,
				obs.Int("src", int64(src)), obs.Int("bytes", int64(m.Size())))
		}
		return
	}
	at := serDone + n.params.LinkLatency + v.Delay
	n.deliver(sv, c, at, dst, p)
	if v.Dup {
		if n.rec != nil {
			n.rec.OnLane(sv.Lane()).SpanAt("chaos", "dup", dst, fabricLane+src, sv.Now(), 0,
				obs.Int("src", int64(src)))
		}
		n.deliver(sv, c, at, dst, p)
	}
}

func (n *Network) chunksFor(size int) int {
	chunks := (size + n.params.ChunkSize - 1) / n.params.ChunkSize
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

func (n *Network) acquireSendChunks(t *sim.Task, c *conn, chunks int) {
	for i := 0; i < chunks; i++ {
		if !c.sendPool.TryAcquire() {
			n.stats.sendPoolWaits.Add(1)
			c.sendPool.Acquire(t)
		}
	}
}

// deliver is the per-connection ordering point: it schedules a connection
// event (VERB delivery, RDMA data placement, or control envelope) at the
// destination no earlier than `at`, preserving per-QP FIFO and modeling
// receiver-not-ready stalls when the posted-receive pool is empty. sv is the
// lane view of the sending context; the arrival event is staged onto the
// message's delivery lane (destination node, or global for GlobalDelivery
// messages) and executes there.
func (n *Network) deliver(sv *sim.Engine, c *conn, at time.Duration, dst int, p pending) {
	if n.inj != nil {
		// A partition holds the whole connection: delivery resumes when it
		// heals. Holding (not dropping) keeps every message class safe.
		if until, held := n.inj.HeldUntil(sv.Now(), p.src, dst); held && at < until {
			at = until
		}
	}
	lane := dst
	if p.m != nil {
		lane = deliveryLane(p.m, dst)
	}
	if lane == sim.GlobalLane {
		// Control QP: its own strictly monotone clock keeps control arrivals
		// in send order regardless of which lane each send executed on.
		if at <= c.deliverAtG {
			at = c.deliverAtG + 1
		}
		c.deliverAtG = at
		sv.AfterOn(sim.GlobalLane, at-sv.Now(), func() { n.arriveControl(c, dst, p) })
		return
	}
	// Data QP. The clamp is strictly monotone so same-instant arrivals can
	// never be reordered by lane-key tie-breaks: arrival order is send order.
	if at <= c.deliverAt {
		at = c.deliverAt + 1
	}
	c.deliverAt = at
	sv.AfterOn(dst, at-sv.Now(), func() { n.arrive(c, dst, p) })
}

func (n *Network) arrive(c *conn, dst int, p pending) {
	dv := n.view(dst)
	if n.inj != nil {
		// A crashed machine neither sends nor receives: traffic touching it
		// vanishes, including messages already in flight at crash time.
		if n.inj.NodeDead(dst) || n.inj.NodeDead(p.src) {
			n.inj.CountDrop(messageBytes(p))
			return
		}
		// An RNR storm forces receiver-not-ready for everything that arrives
		// during the window; the backlog drains in order when it ends.
		if until, storming := n.inj.RNRUntil(dv.Now(), dst); storming {
			if p.data == nil {
				n.stats.recvRNRStalls.Add(1)
			}
			if n.rec != nil {
				p.stalled = true
				p.stallAt = dv.Now()
			}
			c.rnrQueue = append(c.rnrQueue, p)
			if c.stormDrainAt < until {
				c.stormDrainAt = until
				dv.After(until-dv.Now(), func() { n.drainStorm(c, dst) })
			}
			return
		}
	}
	if len(c.rnrQueue) > 0 || (p.data == nil && c.posted == 0) {
		// Either the receiver is not ready, or earlier events are already
		// stalled behind it. An RC connection replays its stream in order
		// after an RNR NAK, so even an RDMA placement may not pass a
		// stalled send.
		if p.data == nil {
			n.stats.recvRNRStalls.Add(1)
		}
		if n.rec != nil {
			p.stalled = true
			p.stallAt = dv.Now()
		}
		c.rnrQueue = append(c.rnrQueue, p)
		return
	}
	n.accept(c, dst, p)
}

// arriveControl is the control QP's arrival point; it always executes on the
// global lane, where every other lane is quiescent, so the handler may touch
// cross-cutting state. The control QP has dedicated posted receives: only
// storms and partitions stall it, not data backlog.
func (n *Network) arriveControl(c *conn, dst int, p pending) {
	gv := n.gview
	if n.inj != nil {
		if n.inj.NodeDead(dst) || n.inj.NodeDead(p.src) {
			n.inj.CountDrop(messageBytes(p))
			return
		}
		if until, storming := n.inj.RNRUntil(gv.Now(), dst); storming {
			n.stats.recvRNRStalls.Add(1)
			if n.rec != nil {
				p.stalled = true
				p.stallAt = gv.Now()
			}
			c.rnrQueueG = append(c.rnrQueueG, p)
			if c.stormDrainAtG < until {
				c.stormDrainAtG = until
				gv.After(until-gv.Now(), func() { n.drainStormControl(c, dst) })
			}
			return
		}
	}
	if len(c.rnrQueueG) > 0 {
		n.stats.recvRNRStalls.Add(1)
		if n.rec != nil {
			p.stalled = true
			p.stallAt = gv.Now()
		}
		c.rnrQueueG = append(c.rnrQueueG, p)
		return
	}
	n.acceptControl(c, dst, p)
}

// drainStormControl restarts control delivery once an RNR storm ends.
func (n *Network) drainStormControl(c *conn, dst int) {
	if len(c.rnrQueueG) == 0 {
		return
	}
	q := c.rnrQueueG[0]
	c.rnrQueueG = c.rnrQueueG[1:]
	n.acceptControl(c, dst, q) // its completion continues the drain
}

// acceptControl consumes one control envelope: receive-completion cost, then
// the handler, on the global lane.
func (n *Network) acceptControl(c *conn, dst int, p pending) {
	gv := n.gview
	// Control arrivals execute on the global lane; record on its shard.
	if n.rec != nil && p.stalled {
		n.rec.OnLane(sim.GlobalLane).SpanAt("fabric", "rnr.stall", dst, fabricLane+p.src, p.stallAt,
			gv.Now()-p.stallAt, obs.Int("src", int64(p.src)))
	}
	gv.After(n.params.RecvCPU, func() {
		h := n.handlers[dst]
		if h == nil {
			panic(fmt.Sprintf("fabric: no handler on node %d for message from %d", dst, p.src))
		}
		if n.rec != nil {
			rec := n.rec.OnLane(sim.GlobalLane)
			rec.Span("fabric", p.spanName(), dst, fabricLane+p.src, p.sentAt,
				obs.Int("src", int64(p.src)), obs.Int("bytes", int64(p.bytes)))
			rec.Observe(p.spanName(), gv.Now()-p.sentAt)
		}
		h(p.src, p.m)
		if len(c.rnrQueueG) > 0 {
			q := c.rnrQueueG[0]
			c.rnrQueueG = c.rnrQueueG[1:]
			n.acceptControl(c, dst, q)
		}
	})
}

// messageBytes is the payload size of a connection event, for drop
// accounting (an RDMA placement has no Message, only data).
func messageBytes(p pending) int {
	if p.m != nil {
		return p.m.Size()
	}
	return p.bytes
}

// drainStorm restarts delivery on a connection once an RNR storm ends. It
// mirrors the completion-drain loop in accept: placements flow freely, and
// the first VERB message's completion continues the drain in order.
func (n *Network) drainStorm(c *conn, dst int) {
	for len(c.rnrQueue) > 0 {
		q := c.rnrQueue[0]
		if q.data == nil && c.posted == 0 {
			return // a completion will repost a buffer and continue
		}
		c.rnrQueue = c.rnrQueue[1:]
		n.accept(c, dst, q)
		if q.data == nil {
			return // its completion continues the drain
		}
	}
}

// accept consumes one connection event whose turn has come. It runs on the
// destination node's lane.
func (n *Network) accept(c *conn, dst int, p pending) {
	dv := n.view(dst)
	// Data-QP arrivals execute on the destination node's lane; record on its
	// shard so concurrent lanes never share a span buffer.
	if n.rec != nil && p.stalled {
		n.rec.OnLane(dst).SpanAt("fabric", "rnr.stall", dst, fabricLane+p.src, p.stallAt,
			dv.Now()-p.stallAt, obs.Int("src", int64(p.src)))
	}
	if p.data != nil {
		p.data()
		if n.rec != nil {
			rec := n.rec.OnLane(dst)
			rec.Span("fabric", p.spanName(), dst, fabricLane+p.src, p.sentAt,
				obs.Int("src", int64(p.src)), obs.Int("bytes", int64(p.bytes)))
			rec.Observe(p.spanName(), dv.Now()-p.sentAt)
		}
		return
	}
	c.posted--
	dv.After(n.params.RecvCPU, func() {
		h := n.handlers[dst]
		if h == nil {
			panic(fmt.Sprintf("fabric: no handler on node %d for message from %d", dst, p.src))
		}
		if n.rec != nil {
			// The span ends when the receive completion hands the message to
			// the protocol handler: enqueue → (stall) → deliver.
			rec := n.rec.OnLane(dst)
			rec.Span("fabric", p.spanName(), dst, fabricLane+p.src, p.sentAt,
				obs.Int("src", int64(p.src)), obs.Int("bytes", int64(p.bytes)))
			rec.Observe(p.spanName(), dv.Now()-p.sentAt)
		}
		h(p.src, p.m)
		// Recycle the DMA-ready receive buffer by reposting it, then drain
		// stalled events in order: data placements need no buffer; the next
		// message consumes the reposted buffer and its own completion
		// continues the drain, so nothing queued behind it can pass it.
		c.posted++
		for len(c.rnrQueue) > 0 {
			q := c.rnrQueue[0]
			c.rnrQueue = c.rnrQueue[1:]
			n.accept(c, dst, q)
			if q.data == nil {
				break
			}
		}
	})
}

// PageRecv is a prepared landing zone for one incoming page-sized transfer.
// The requester prepares it before asking a peer for data, passes its Handle
// in the request, and either Claims the data after the reply or Releases the
// reservation if the peer replied without data.
type PageRecv struct {
	net  *Network
	conn *conn // connection peer->self, whose sink the buffer came from
	mode PageMode
	data []byte
	used bool
}

// PreparePageRecv reserves receive-side resources at node `self` for a page
// transfer from node `peer`, blocking the task if the sink pool is
// exhausted. In PerPageReg mode it charges the dynamic registration cost;
// in VerbOnly mode it is free.
func (n *Network) PreparePageRecv(t *sim.Task, peer, self int) *PageRecv {
	pr := &PageRecv{net: n, mode: n.params.Mode}
	switch n.params.Mode {
	case HybridSink:
		c := n.conn(peer, self)
		pr.conn = c
		if !c.sinkPool.TryAcquire() {
			n.stats.sinkWaits.Add(1)
			c.sinkPool.Acquire(t)
		}
	case PerPageReg:
		n.stats.registrations.Add(1)
		t.Sleep(n.params.RegisterCost)
	case VerbOnly:
		// Page data will ride the VERB path; nothing to reserve.
	default:
		panic("fabric: unknown page mode")
	}
	return pr
}

// SendPage transmits page data plus a reply message from src to dst
// according to the configured mode. The data lands in the PageRecv the
// requester prepared (identified by the reply routing in the protocol
// layer); reply is delivered to dst's handler strictly after the data. The
// calling task is charged posting and staging costs.
//
// Accounting: the page payload is always counted under PageSends/PageBytes,
// whatever path carries it; SmallSends/SmallBytes count VERB messages with
// only their non-page bytes, so PageBytes+SmallBytes equals the bytes the
// links actually carried in every mode.
func (n *Network) SendPage(t *sim.Task, src, dst int, pr *PageRecv, data []byte, reply Message) {
	n.SendPageBuf(t, src, dst, pr, data, reply, nil)
}

// SendPageBuf is SendPage with a caller-provided staging buffer: buf (which
// must be len(data) bytes, or nil to allocate) receives the snapshot of data
// that travels to the receiver and is handed over by Claim. The protocol
// layer passes recycled page frames here so the transfer path does not
// allocate per page. The snapshot is taken synchronously, before SendPageBuf
// first yields, so the caller may drop or reuse data as soon as the call
// returns.
func (n *Network) SendPageBuf(t *sim.Task, src, dst int, pr *PageRecv, data []byte, reply Message, buf []byte) {
	if pr == nil {
		panic("fabric: SendPage requires a prepared PageRecv")
	}
	c := n.conn(src, dst)
	sv := t.Engine()
	n.stats.pageSends.Add(1)
	n.stats.pageBytes.Add(uint64(len(data)))
	if len(buf) != len(data) {
		buf = make([]byte, len(data))
	}
	copy(buf, data)
	// One chaos verdict covers the page data and its completion message: an
	// RC stream fails as a unit, so the receiver never sees data without the
	// reply that announces it, or vice versa.
	var v chaos.Verdict
	if n.inj != nil {
		v = n.inj.Verdict(sv.Now(), src, dst, len(data)+reply.Size(), expendable(reply))
	}
	switch pr.mode {
	case HybridSink, PerPageReg:
		n.stats.rdmaWrites.Add(1)
		place := pending{src: src, bytes: len(data), data: func() { pr.data = buf }}
		if n.rec != nil {
			place.sentAt = sv.Now()
			place.page = true
		}
		t.Sleep(n.params.RDMAPostCPU)
		done := c.link.Occupy(len(data))
		if !v.Drop {
			// Route the placement through the connection's ordering point so
			// page data and VERB messages keep one per-connection FIFO.
			at := done + n.params.LinkLatency + v.Delay
			n.deliver(sv, c, at, dst, place)
			if v.Dup {
				n.deliver(sv, c, at, dst, place)
			}
		}
		n.sendWith(t, src, dst, reply, v) // same connection: FIFO after the RDMA write
	case VerbOnly:
		p := pending{src: src, m: reply}
		if n.rec != nil {
			p.sentAt = sv.Now()
			p.bytes = len(data) + reply.Size()
			p.page = true
		}
		t.Sleep(n.memcpyCost(len(data))) // stage into send chunks
		n.stats.memcpyBytes.Add(uint64(len(data)))
		chunks := n.chunksFor(len(data) + reply.Size())
		n.acquireSendChunks(t, c, chunks)
		t.Sleep(n.params.SendCPU)
		n.stats.smallSends.Add(1)
		n.stats.smallBytes.Add(uint64(reply.Size())) // page payload counted above
		done := c.link.Occupy(len(data) + reply.Size())
		sv.After(done-sv.Now(), func() {
			for i := 0; i < chunks; i++ {
				c.sendPool.Release()
			}
		})
		pr.data = buf // visible once the reply is handled
		if v.Drop {
			return
		}
		at := done + n.params.LinkLatency + v.Delay
		n.deliver(sv, c, at, dst, p)
		if v.Dup {
			n.deliver(sv, c, at, dst, p)
		}
	}
}

// Claim returns the received page data, charging the mode's finalization
// cost (sink memcpy for HybridSink, receive-side staging copy for VerbOnly)
// and releasing receive-side resources. It must be called at the destination
// after the reply message has been handled.
func (pr *PageRecv) Claim(t *sim.Task) []byte {
	if pr.used {
		panic("fabric: PageRecv reused")
	}
	pr.used = true
	if pr.data == nil {
		panic("fabric: Claim before page data arrived")
	}
	switch pr.mode {
	case HybridSink:
		t.Sleep(pr.net.memcpyCost(len(pr.data)))
		pr.net.stats.memcpyBytes.Add(uint64(len(pr.data)))
		pr.conn.sinkPool.Release()
	case PerPageReg:
		// Zero copy: RDMA wrote straight into the registered page.
	case VerbOnly:
		t.Sleep(pr.net.memcpyCost(len(pr.data)))
		pr.net.stats.memcpyBytes.Add(uint64(len(pr.data)))
	}
	return pr.data
}

// Peek returns the received page data without claiming it, or nil if no
// data has arrived yet. Recovery paths use it to check whether a landing
// zone was filled before a fault interrupted the exchange.
func (pr *PageRecv) Peek() []byte { return pr.data }

// Release frees the reservation when the peer replied without page data
// (e.g. an ownership-only grant).
func (pr *PageRecv) Release() {
	if pr.used {
		return
	}
	pr.used = true
	if pr.mode == HybridSink {
		pr.conn.sinkPool.Release()
	}
}

func (n *Network) memcpyCost(bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / n.params.MemcpyBandwidth * float64(time.Second))
}

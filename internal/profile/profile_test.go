package profile

import (
	"strings"
	"testing"
	"time"

	"dex/internal/dsm"
	"dex/internal/mem"
)

func mkTrace() *Trace {
	tr := NewTrace()
	hook := tr.Hook()
	page := func(p int) mem.Addr { return mem.Addr(0x40000000 + p*mem.PageSize) }
	// Page 0: heavy cross-node write contention; page 1: read-mostly from
	// one node; page 2: single invalidation.
	for i := 0; i < 10; i++ {
		hook(dsm.FaultEvent{
			Time: time.Duration(i) * time.Millisecond, Node: i % 2, Task: i % 3,
			Kind: dsm.KindWrite, Site: "kmeans/update", Addr: page(0) + 8,
			Latency: 100 * time.Microsecond, Retries: 1,
		})
	}
	for i := 0; i < 4; i++ {
		hook(dsm.FaultEvent{
			Time: time.Duration(i) * time.Millisecond, Node: 1, Task: 5,
			Kind: dsm.KindRead, Site: "kmeans/scan", Addr: page(1) + 16,
			Latency: 19 * time.Microsecond,
		})
	}
	hook(dsm.FaultEvent{Time: 2 * time.Millisecond, Node: 0, Task: -1, Kind: dsm.KindInvalidate, Addr: page(2)})
	tr.SetLabeler(func(a mem.Addr) string {
		switch a.PageBase() {
		case page(0):
			return "clusters"
		case page(1):
			return "points"
		}
		return ""
	})
	return tr
}

func TestSummarize(t *testing.T) {
	tr := mkTrace()
	s := tr.Summarize()
	if s.Total != 15 || s.Reads != 4 || s.Writes != 10 || s.Invals != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Retried != 10 {
		t.Fatalf("Retried = %d", s.Retried)
	}
	want := (10*100 + 4*19) * time.Microsecond / 14
	if s.AvgLatency != want {
		t.Fatalf("AvgLatency = %v, want %v", s.AvgLatency, want)
	}
	if s.SlowFraction < 0.7 || s.SlowFraction > 0.72 {
		t.Fatalf("SlowFraction = %v", s.SlowFraction)
	}
}

func TestTopSites(t *testing.T) {
	tr := mkTrace()
	sites := tr.TopSites(10)
	if len(sites) != 3 {
		t.Fatalf("sites = %v", sites)
	}
	if sites[0].Key != "kmeans/update" || sites[0].Writes != 10 {
		t.Fatalf("top site = %+v", sites[0])
	}
	if sites[1].Key != "kmeans/scan" || sites[1].Reads != 4 {
		t.Fatalf("second site = %+v", sites[1])
	}
	if sites[2].Key != "(kernel)" {
		t.Fatalf("third site = %+v", sites[2])
	}
	if got := tr.TopSites(1); len(got) != 1 {
		t.Fatalf("TopSites(1) returned %d", len(got))
	}
}

func TestTopRegions(t *testing.T) {
	tr := mkTrace()
	regions := tr.TopRegions(10)
	if regions[0].Key != "clusters" || regions[0].Total() != 10 {
		t.Fatalf("top region = %+v", regions[0])
	}
	if regions[1].Key != "points" {
		t.Fatalf("second region = %+v", regions[1])
	}
	// Unlabeled page falls back to "?".
	found := false
	for _, r := range regions {
		if r.Key == "?" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing '?' region for unlabeled page")
	}
}

func TestTopPagesContention(t *testing.T) {
	tr := mkTrace()
	pages := tr.TopPages(10)
	if pages[0].Label != "clusters" || pages[0].Nodes != 2 || pages[0].Writes != 10 {
		t.Fatalf("top page = %+v", pages[0])
	}
	if pages[1].Nodes != 1 {
		t.Fatalf("second page nodes = %d", pages[1].Nodes)
	}
}

func TestTimeline(t *testing.T) {
	tr := mkTrace()
	buckets := tr.Timeline(5 * time.Millisecond)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %v", buckets)
	}
	total := 0
	for _, b := range buckets {
		total += b.Faults
	}
	if total != 15 {
		t.Fatalf("timeline total = %d", total)
	}
	if buckets[0].Faults <= buckets[1].Faults {
		t.Fatalf("expected front-loaded timeline: %v", buckets)
	}
	if tr.Timeline(0) != nil {
		t.Fatal("zero-width timeline should be nil")
	}
}

func TestPerThread(t *testing.T) {
	tr := mkTrace()
	pt := tr.PerThread()
	// Invalidations (task -1) are excluded.
	for _, p := range pt {
		if p.Task == -1 {
			t.Fatalf("invalidation leaked into per-thread analysis: %+v", p)
		}
	}
	if pt[0].Reads+pt[0].Writes < pt[len(pt)-1].Reads+pt[len(pt)-1].Writes {
		t.Fatal("per-thread not sorted by activity")
	}
}

func TestReportRenders(t *testing.T) {
	tr := mkTrace()
	var sb strings.Builder
	tr.Report(&sb, 5)
	out := sb.String()
	for _, want := range []string{"clusters", "kmeans/update", "most contended pages", "per-thread"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := NewTrace()
	if tr.Len() != 0 || tr.Summarize().Total != 0 {
		t.Fatal("empty trace not empty")
	}
	if tr.Timeline(time.Millisecond) != nil {
		t.Fatal("empty timeline not nil")
	}
	var sb strings.Builder
	tr.Report(&sb, 3) // must not panic
}

func TestAffinitySuggestions(t *testing.T) {
	tr := NewTrace()
	hook := tr.Hook()
	page := func(p int) mem.Addr { return mem.Addr(0x50000000 + p*mem.PageSize) }
	// Node 2 produces pages 0-3; task 9 on node 0 keeps reading them.
	for p := 0; p < 4; p++ {
		hook(dsm.FaultEvent{Node: 2, Task: 1, Kind: dsm.KindWrite, Addr: page(p)})
		for i := 0; i < 5; i++ {
			hook(dsm.FaultEvent{Node: 0, Task: 9, Kind: dsm.KindRead, Addr: page(p) + 8})
		}
	}
	// Task 9 also reads one page produced locally (must not count).
	hook(dsm.FaultEvent{Node: 0, Task: 9, Kind: dsm.KindWrite, Addr: page(9)})
	hook(dsm.FaultEvent{Node: 0, Task: 9, Kind: dsm.KindRead, Addr: page(9)})
	sug := tr.AffinitySuggestions(1)
	if len(sug) != 1 {
		t.Fatalf("suggestions = %+v", sug)
	}
	s := sug[0]
	if s.Task != 9 || s.From != 0 || s.To != 2 || s.ReadFaults != 20 || s.Total != 20 {
		t.Fatalf("suggestion = %+v", s)
	}
	if s.Score() != 1.0 {
		t.Fatalf("score = %v", s.Score())
	}
}

func TestAffinityMinFaultsFilter(t *testing.T) {
	tr := NewTrace()
	hook := tr.Hook()
	a := mem.Addr(0x60000000)
	hook(dsm.FaultEvent{Node: 1, Task: 2, Kind: dsm.KindWrite, Addr: a})
	hook(dsm.FaultEvent{Node: 0, Task: 3, Kind: dsm.KindRead, Addr: a})
	if got := tr.AffinitySuggestions(2); len(got) != 0 {
		t.Fatalf("below-threshold suggestion returned: %+v", got)
	}
	if got := tr.AffinitySuggestions(1); len(got) != 1 {
		t.Fatalf("suggestion missing: %+v", got)
	}
}

func TestAffinityNoWriterKnown(t *testing.T) {
	tr := NewTrace()
	hook := tr.Hook()
	// Reads of a page that was never written cross-node: no producer info.
	hook(dsm.FaultEvent{Node: 0, Task: 1, Kind: dsm.KindRead, Addr: 0x70000000})
	if got := tr.AffinitySuggestions(1); len(got) != 0 {
		t.Fatalf("suggestion without producer: %+v", got)
	}
}

func TestAffinityTieBreaksDeterministic(t *testing.T) {
	build := func() []Suggestion {
		tr := NewTrace()
		hook := tr.Hook()
		pa, pb := mem.Addr(0x80000000), mem.Addr(0x80001000)
		hook(dsm.FaultEvent{Node: 1, Task: 0, Kind: dsm.KindWrite, Addr: pa})
		hook(dsm.FaultEvent{Node: 2, Task: 0, Kind: dsm.KindWrite, Addr: pb})
		hook(dsm.FaultEvent{Node: 0, Task: 5, Kind: dsm.KindRead, Addr: pa})
		hook(dsm.FaultEvent{Node: 0, Task: 5, Kind: dsm.KindRead, Addr: pb})
		return tr.AffinitySuggestions(1)
	}
	a, b := build(), build()
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("tie-break nondeterministic: %+v vs %+v", a, b)
	}
	if a[0].To != 1 { // lowest node id wins ties
		t.Fatalf("tie went to node %d", a[0].To)
	}
}

func TestCorrelatedSites(t *testing.T) {
	tr := NewTrace()
	hook := tr.Hook()
	pg := func(p int) mem.Addr { return mem.Addr(0x90000000 + p*mem.PageSize) }
	// "producer/store" writes pages 0-1; "consumer/load" reads them back.
	for p := 0; p < 2; p++ {
		for i := 0; i < 5; i++ {
			hook(dsm.FaultEvent{Node: 0, Task: 1, Kind: dsm.KindWrite, Site: "producer/store", Addr: pg(p)})
			hook(dsm.FaultEvent{Node: 1, Task: 2, Kind: dsm.KindRead, Site: "consumer/load", Addr: pg(p) + 64})
		}
	}
	// Unrelated site on its own page must not pair up.
	hook(dsm.FaultEvent{Node: 0, Task: 3, Kind: dsm.KindWrite, Site: "elsewhere", Addr: pg(9)})
	pairs := tr.CorrelatedSites(5)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v", pairs)
	}
	p := pairs[0]
	if p.WriteSite != "producer/store" || p.ReadSite != "consumer/load" {
		t.Fatalf("pair = %+v", p)
	}
	if p.Pages != 2 || p.Writes != 10 || p.Reads != 10 {
		t.Fatalf("volumes = %+v", p)
	}
}

func TestCorrelatedSitesTopN(t *testing.T) {
	tr := NewTrace()
	hook := tr.Hook()
	pg := mem.Addr(0xa0000000)
	for i := 0; i < 3; i++ {
		site := string(rune('a' + i))
		hook(dsm.FaultEvent{Kind: dsm.KindWrite, Site: "w" + site, Addr: pg + mem.Addr(i*mem.PageSize)})
		hook(dsm.FaultEvent{Kind: dsm.KindRead, Site: "r" + site, Addr: pg + mem.Addr(i*mem.PageSize)})
	}
	if got := tr.CorrelatedSites(2); len(got) != 2 {
		t.Fatalf("topN = %d", len(got))
	}
	// Deterministic ordering under ties.
	a := tr.CorrelatedSites(0)
	b := tr.CorrelatedSites(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic order")
		}
	}
}

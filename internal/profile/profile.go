// Package profile implements DeX's page-fault profiling tool (§IV-A of the
// paper). It records a trace of every page fault the memory consistency
// protocol handles — time, node, task, fault type, program site, faulting
// address — and post-processes it into the analyses the paper describes:
// the program objects and source locations causing the most faults, fault
// frequency over time, per-thread access patterns, and per-page contention.
package profile

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dex/internal/dsm"
	"dex/internal/mem"
)

// Trace accumulates fault events from a run.
type Trace struct {
	events  []dsm.FaultEvent
	labeler func(mem.Addr) string
	cap     int
	dropped uint64
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// SetCap bounds the trace to at most n events; once full, further events
// are counted in Dropped instead of retained. n <= 0 means unbounded (the
// default). Long-running simulations produce millions of fault events, and
// an unbounded trace is the process's largest allocation — the cap keeps
// the profiler usable as an always-on sampler of the run's prefix.
func (tr *Trace) SetCap(n int) { tr.cap = n }

// Dropped reports how many events were discarded because the trace was at
// its cap.
func (tr *Trace) Dropped() uint64 { return tr.dropped }

// Hook returns the dsm.Hook that records into this trace; install it as the
// cluster's fault hook.
func (tr *Trace) Hook() dsm.Hook {
	return func(ev dsm.FaultEvent) {
		if tr.cap > 0 && len(tr.events) >= tr.cap {
			tr.dropped++
			return
		}
		tr.events = append(tr.events, ev)
	}
}

// SetLabeler installs a function resolving addresses to program-object
// labels (typically the VMA label of the containing mapping).
func (tr *Trace) SetLabeler(fn func(mem.Addr) string) { tr.labeler = fn }

// Events returns the recorded events in order.
func (tr *Trace) Events() []dsm.FaultEvent { return tr.events }

// Len returns the number of recorded events.
func (tr *Trace) Len() int { return len(tr.events) }

func (tr *Trace) label(a mem.Addr) string {
	if tr.labeler == nil {
		return "?"
	}
	if l := tr.labeler(a); l != "" {
		return l
	}
	return "?"
}

// Count is a generic (key, faults) pair produced by the top-N analyses.
type Count struct {
	Key    string
	Reads  uint64
	Writes uint64
	Invals uint64
}

// Total returns the total events for the key.
func (c Count) Total() uint64 { return c.Reads + c.Writes + c.Invals }

func accumulate(events []dsm.FaultEvent, key func(dsm.FaultEvent) string) []Count {
	idx := make(map[string]int)
	var out []Count
	for _, ev := range events {
		k := key(ev)
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, Count{Key: k})
		}
		switch ev.Kind {
		case dsm.KindRead:
			out[i].Reads++
		case dsm.KindWrite:
			out[i].Writes++
		case dsm.KindInvalidate:
			out[i].Invals++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func top(counts []Count, n int) []Count {
	if n > 0 && len(counts) > n {
		counts = counts[:n]
	}
	return counts
}

// TopSites returns the program sites causing the most protocol events.
func (tr *Trace) TopSites(n int) []Count {
	return top(accumulate(tr.events, func(ev dsm.FaultEvent) string {
		if ev.Site == "" {
			return "(kernel)"
		}
		return ev.Site
	}), n)
}

// TopRegions returns the program objects (labeled memory regions) causing
// the most protocol events.
func (tr *Trace) TopRegions(n int) []Count {
	return top(accumulate(tr.events, func(ev dsm.FaultEvent) string {
		return tr.label(ev.Addr)
	}), n)
}

// PageContention describes protocol activity on one page.
type PageContention struct {
	Page   mem.Addr
	Label  string
	Reads  uint64
	Writes uint64
	Invals uint64
	Nodes  int // distinct nodes that faulted on the page
}

// Total returns total events on the page.
func (p PageContention) Total() uint64 { return p.Reads + p.Writes + p.Invals }

// TopPages returns the most contended pages: pages touched from several
// nodes with a write/invalidate mix are false-sharing suspects (§IV-B).
func (tr *Trace) TopPages(n int) []PageContention {
	type acc struct {
		pc    PageContention
		nodes map[int]struct{}
	}
	idx := make(map[mem.Addr]*acc)
	var order []mem.Addr
	for _, ev := range tr.events {
		page := ev.Addr.PageBase()
		a, ok := idx[page]
		if !ok {
			a = &acc{pc: PageContention{Page: page, Label: tr.label(page)}, nodes: make(map[int]struct{})}
			idx[page] = a
			order = append(order, page)
		}
		a.nodes[ev.Node] = struct{}{}
		switch ev.Kind {
		case dsm.KindRead:
			a.pc.Reads++
		case dsm.KindWrite:
			a.pc.Writes++
		case dsm.KindInvalidate:
			a.pc.Invals++
		}
	}
	out := make([]PageContention, 0, len(order))
	for _, page := range order {
		a := idx[page]
		a.pc.Nodes = len(a.nodes)
		out = append(out, a.pc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Page < out[j].Page
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TimeBucket is one bin of the fault-frequency-over-time analysis.
type TimeBucket struct {
	Start  time.Duration
	Faults int
}

// Timeline bins fault events into fixed-width buckets.
func (tr *Trace) Timeline(width time.Duration) []TimeBucket {
	if width <= 0 || len(tr.events) == 0 {
		return nil
	}
	// Events complete out of order; find the latest timestamp.
	var end time.Duration
	for _, ev := range tr.events {
		if ev.Time > end {
			end = ev.Time
		}
	}
	n := int(end/width) + 1
	out := make([]TimeBucket, n)
	for i := range out {
		out[i].Start = time.Duration(i) * width
	}
	for _, ev := range tr.events {
		out[ev.Time/width].Faults++
	}
	return out
}

// ThreadPattern summarizes one (node, task) context's access behaviour.
type ThreadPattern struct {
	Node, Task    int
	Reads, Writes uint64
	Pages         int // distinct pages touched
}

// PerThread returns per-(node, task) access patterns, ordered by activity.
func (tr *Trace) PerThread() []ThreadPattern {
	type acc struct {
		tp    ThreadPattern
		pages map[mem.Addr]struct{}
	}
	type key struct{ node, task int }
	idx := make(map[key]*acc)
	var order []key
	for _, ev := range tr.events {
		if ev.Kind == dsm.KindInvalidate {
			continue
		}
		k := key{ev.Node, ev.Task}
		a, ok := idx[k]
		if !ok {
			a = &acc{tp: ThreadPattern{Node: ev.Node, Task: ev.Task}, pages: make(map[mem.Addr]struct{})}
			idx[k] = a
			order = append(order, k)
		}
		a.pages[ev.Addr.PageBase()] = struct{}{}
		if ev.Kind == dsm.KindRead {
			a.tp.Reads++
		} else {
			a.tp.Writes++
		}
	}
	out := make([]ThreadPattern, 0, len(order))
	for _, k := range order {
		a := idx[k]
		a.tp.Pages = len(a.pages)
		out = append(out, a.tp)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Reads+out[i].Writes, out[j].Reads+out[j].Writes
		if ti != tj {
			return ti > tj
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Task < out[j].Task
	})
	return out
}

// Summary aggregates the whole trace.
type Summary struct {
	Total        int
	Reads        uint64
	Writes       uint64
	Invals       uint64
	Retried      int
	AvgLatency   time.Duration
	SlowFraction float64 // fraction of faults slower than 40µs (retry mode)
}

// Summarize computes the trace summary.
func (tr *Trace) Summarize() Summary {
	var s Summary
	var latSum time.Duration
	var latN int
	for _, ev := range tr.events {
		s.Total++
		switch ev.Kind {
		case dsm.KindRead:
			s.Reads++
		case dsm.KindWrite:
			s.Writes++
		case dsm.KindInvalidate:
			s.Invals++
			continue
		}
		latSum += ev.Latency
		latN++
		if ev.Retries > 0 {
			s.Retried++
		}
		if ev.Latency > 40*time.Microsecond {
			s.SlowFraction++
		}
	}
	if latN > 0 {
		s.AvgLatency = latSum / time.Duration(latN)
		s.SlowFraction /= float64(latN)
	}
	return s
}

// Report writes a human-readable profiling report covering every analysis,
// in the spirit of the paper's post-processing tool.
func (tr *Trace) Report(w io.Writer, topN int) {
	s := tr.Summarize()
	fmt.Fprintf(w, "=== DeX page-fault profile ===\n")
	fmt.Fprintf(w, "events: %d  (reads %d, writes %d, invalidations %d)\n", s.Total, s.Reads, s.Writes, s.Invals)
	fmt.Fprintf(w, "avg fault latency: %v   retried: %d   slow fraction: %.1f%%\n\n",
		s.AvgLatency.Round(100*time.Nanosecond), s.Retried, 100*s.SlowFraction)

	fmt.Fprintf(w, "--- top program objects (regions) ---\n")
	for _, c := range tr.TopRegions(topN) {
		fmt.Fprintf(w, "%10d  %-30s (r %d / w %d / inv %d)\n", c.Total(), c.Key, c.Reads, c.Writes, c.Invals)
	}
	fmt.Fprintf(w, "\n--- top fault sites ---\n")
	for _, c := range tr.TopSites(topN) {
		fmt.Fprintf(w, "%10d  %-30s (r %d / w %d)\n", c.Total(), c.Key, c.Reads, c.Writes)
	}
	fmt.Fprintf(w, "\n--- most contended pages ---\n")
	for _, pc := range tr.TopPages(topN) {
		fmt.Fprintf(w, "%10d  %v %-24s nodes=%d (r %d / w %d / inv %d)\n",
			pc.Total(), pc.Page, pc.Label, pc.Nodes, pc.Reads, pc.Writes, pc.Invals)
	}
	fmt.Fprintf(w, "\n--- correlated write/read site pairs (§IV-C) ---\n")
	for _, p := range tr.CorrelatedSites(topN) {
		fmt.Fprintf(w, "%10d  %s writes -> %s reads (%d shared pages, w %d / r %d)\n",
			p.Writes+p.Reads, p.WriteSite, p.ReadSite, p.Pages, p.Writes, p.Reads)
	}
	fmt.Fprintf(w, "\n--- per-thread patterns ---\n")
	pt := tr.PerThread()
	if topN > 0 && len(pt) > topN {
		pt = pt[:topN]
	}
	for _, p := range pt {
		fmt.Fprintf(w, "node %d task %3d: %6d reads %6d writes over %d pages\n",
			p.Node, p.Task, p.Reads, p.Writes, p.Pages)
	}
}

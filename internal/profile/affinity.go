package profile

import (
	"sort"

	"dex/internal/dsm"
	"dex/internal/mem"
)

// Affinity analysis implements the paper's closing observation that DeX's
// relocation capability can be "leveraged to relocate the computation near
// the data": from the fault trace it infers, per thread, the node that
// produces most of the data the thread keeps pulling across the fabric, so
// a scheduler (or the application itself, between phases) can migrate the
// thread there.

// Suggestion recommends moving one thread to the node that produces the
// data it reads.
type Suggestion struct {
	Task int
	From int // node the thread faulted from
	To   int // node producing most of what it reads
	// ReadFaults is how many of the thread's read faults targeted pages
	// produced at To; Total is all its cross-node read faults.
	ReadFaults int
	Total      int
}

// Score is the fraction of the thread's remote reads that would become
// local after the move.
func (s Suggestion) Score() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.ReadFaults) / float64(s.Total)
}

// SitePair is a write site and a read site that keep touching the same
// pages — §IV-C's observation that "oftentimes two bottleneck locations
// surface together: one location will incur a large number of write faults,
// while another incurs a correlated number of read/write faults".
type SitePair struct {
	WriteSite string
	ReadSite  string
	// Pages is how many distinct pages both sites fault on; Writes and
	// Reads are the fault volumes of each site on those shared pages.
	Pages  int
	Writes int
	Reads  int
}

// CorrelatedSites finds (write site, read site) pairs sharing fault pages,
// ranked by combined volume — the §IV-C workflow for spotting a producer
// location whose stores keep invalidating a consumer location's replicas.
func (tr *Trace) CorrelatedSites(n int) []SitePair {
	type siteOnPage struct {
		site string
		page mem.Addr
	}
	writeCounts := make(map[siteOnPage]int)
	readCounts := make(map[siteOnPage]int)
	pageWriters := make(map[mem.Addr]map[string]struct{})
	pageReaders := make(map[mem.Addr]map[string]struct{})
	for _, ev := range tr.events {
		if ev.Site == "" {
			continue
		}
		page := ev.Addr.PageBase()
		k := siteOnPage{site: ev.Site, page: page}
		switch ev.Kind {
		case dsm.KindWrite:
			writeCounts[k]++
			if pageWriters[page] == nil {
				pageWriters[page] = make(map[string]struct{})
			}
			pageWriters[page][ev.Site] = struct{}{}
		case dsm.KindRead:
			readCounts[k]++
			if pageReaders[page] == nil {
				pageReaders[page] = make(map[string]struct{})
			}
			pageReaders[page][ev.Site] = struct{}{}
		}
	}
	type pairKey struct{ w, r string }
	acc := make(map[pairKey]*SitePair)
	var order []pairKey
	for page, writers := range pageWriters {
		for w := range writers {
			for r := range pageReaders[page] {
				if w == r {
					continue
				}
				k := pairKey{w: w, r: r}
				p, ok := acc[k]
				if !ok {
					p = &SitePair{WriteSite: w, ReadSite: r}
					acc[k] = p
					order = append(order, k)
				}
				p.Pages++
				p.Writes += writeCounts[siteOnPage{site: w, page: page}]
				p.Reads += readCounts[siteOnPage{site: r, page: page}]
			}
		}
	}
	out := make([]SitePair, 0, len(order))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Writes+out[i].Reads, out[j].Writes+out[j].Reads
		if ti != tj {
			return ti > tj
		}
		if out[i].WriteSite != out[j].WriteSite {
			return out[i].WriteSite < out[j].WriteSite
		}
		return out[i].ReadSite < out[j].ReadSite
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// AffinitySuggestions analyses the trace and returns, for every thread with
// at least minFaults cross-node read faults, the producer node holding most
// of its working set (when that differs from where the thread ran). A
// page's producer is the node with the most write faults on it.
//
// Suggestions are ordered by potential benefit (ReadFaults descending).
func (tr *Trace) AffinitySuggestions(minFaults int) []Suggestion {
	// Producer per page: the node that write-faults it most.
	type wcount map[int]int
	writers := make(map[mem.Addr]wcount)
	for _, ev := range tr.events {
		if ev.Kind != dsm.KindWrite {
			continue
		}
		page := ev.Addr.PageBase()
		if writers[page] == nil {
			writers[page] = make(wcount)
		}
		writers[page][ev.Node]++
	}
	producer := make(map[mem.Addr]int, len(writers))
	for page, w := range writers {
		best, bestN := -1, 0
		for node, n := range w {
			if n > bestN || (n == bestN && (best == -1 || node < best)) {
				best, bestN = node, n
			}
		}
		producer[page] = best
	}
	// Per (node, task): read faults by producer node.
	type key struct{ node, task int }
	reads := make(map[key]map[int]int)
	totals := make(map[key]int)
	var order []key
	for _, ev := range tr.events {
		if ev.Kind != dsm.KindRead {
			continue
		}
		prod, ok := producer[ev.Addr.PageBase()]
		if !ok || prod == ev.Node {
			continue // locally produced or producer unknown
		}
		k := key{ev.Node, ev.Task}
		if reads[k] == nil {
			reads[k] = make(map[int]int)
			order = append(order, k)
		}
		reads[k][prod]++
		totals[k]++
	}
	var out []Suggestion
	for _, k := range order {
		if totals[k] < minFaults {
			continue
		}
		best, bestN := -1, 0
		for node, n := range reads[k] {
			if n > bestN || (n == bestN && (best == -1 || node < best)) {
				best, bestN = node, n
			}
		}
		if best == -1 || best == k.node {
			continue
		}
		out = append(out, Suggestion{
			Task: k.task, From: k.node, To: best,
			ReadFaults: bestN, Total: totals[k],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ReadFaults != out[j].ReadFaults {
			return out[i].ReadFaults > out[j].ReadFaults
		}
		return out[i].Task < out[j].Task
	})
	return out
}

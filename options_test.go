package dex

import (
	"testing"
	"time"

	"dex/internal/core"
)

func TestWithPageTransferMode(t *testing.T) {
	run := func(mode interface{ apply(*core.Params) }) Report {
		cluster := NewCluster(2, mode.(Option))
		rep, err := cluster.Run(func(th *Thread) error {
			addr, err := th.Mmap(16*PageSize, ProtRead|ProtWrite, "d")
			if err != nil {
				return err
			}
			if err := th.Write(addr, make([]byte, 16*PageSize)); err != nil {
				return err
			}
			if err := th.Migrate(1); err != nil {
				return err
			}
			if err := th.Read(addr, make([]byte, 16*PageSize)); err != nil {
				return err
			}
			return th.MigrateBack()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	hybrid := run(WithPageTransferMode(HybridSink))
	perpage := run(WithPageTransferMode(PerPageReg))
	verb := run(WithPageTransferMode(VerbOnly))
	if hybrid.Net.RDMAWrites == 0 || perpage.Net.Registrations == 0 {
		t.Fatalf("modes not applied: %+v / %+v", hybrid.Net, perpage.Net)
	}
	if verb.Net.RDMAWrites != 0 {
		t.Fatalf("verb-only used RDMA: %+v", verb.Net)
	}
	if hybrid.Elapsed >= perpage.Elapsed {
		t.Fatalf("hybrid (%v) not faster than per-page registration (%v)", hybrid.Elapsed, perpage.Elapsed)
	}
}

func TestWithRawParams(t *testing.T) {
	params := core.DefaultParams(8) // node count here is overridden
	params.CoresPerNode = 3
	params.DSM.DisableCoalescing = true
	cluster := NewCluster(2, WithRawParams(params))
	if cluster.Nodes() != 2 {
		t.Fatalf("Nodes = %d; NewCluster's count must win", cluster.Nodes())
	}
	if got := cluster.Machine().Params().CoresPerNode; got != 3 {
		t.Fatalf("CoresPerNode = %d", got)
	}
	if !cluster.Machine().Params().DSM.DisableCoalescing {
		t.Fatal("DSM params lost")
	}
}

func TestStartAtAndElapsed(t *testing.T) {
	cluster := NewCluster(3)
	p := cluster.StartAt(2, func(th *Thread) error {
		if th.Node() != 2 {
			t.Errorf("origin node = %d", th.Node())
		}
		th.Compute(time.Millisecond)
		return nil
	})
	if err := cluster.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Origin() != 2 {
		t.Fatalf("Origin = %d", p.Origin())
	}
	if cluster.Elapsed() < time.Millisecond {
		t.Fatalf("Elapsed = %v", cluster.Elapsed())
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed int64) time.Duration {
		cluster := NewCluster(2, WithSeed(seed))
		rep, err := cluster.Run(func(th *Thread) error {
			addr, err := th.Mmap(PageSize, ProtRead|ProtWrite, "c")
			if err != nil {
				return err
			}
			var ws []*Thread
			for i := 0; i < 4; i++ {
				w, err := th.Spawn(func(w *Thread) error {
					if err := w.Migrate(1); err != nil {
						return err
					}
					for k := 0; k < 30; k++ {
						v, err := w.ReadUint64(addr)
						if err != nil {
							return err
						}
						if err := w.WriteUint64(addr, v+1); err != nil {
							return err
						}
					}
					return w.MigrateBack()
				})
				if err != nil {
					return err
				}
				ws = append(ws, w)
			}
			for k := 0; k < 30; k++ {
				if _, err := th.AddUint64(addr, 1); err != nil {
					return err
				}
				th.Compute(3 * time.Microsecond)
			}
			for _, w := range ws {
				th.Join(w)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed
	}
	// Same seed reproduces exactly; a different seed perturbs backoff
	// jitter and therefore the contended schedule.
	if run(3) != run(3) {
		t.Fatal("same seed diverged")
	}
	if run(3) == run(4) {
		t.Log("note: different seeds coincidentally matched (allowed but unlikely)")
	}
}

package dex

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"dex/internal/chaos"
)

// Public-API fault-injection tests: WithChaos plans drive deterministic
// faults, crashes surface attributably through Join, and an empty plan is
// indistinguishable from no plan at all.

func chaosCrashPlan(node int, at time.Duration) *ChaosPlan {
	return &ChaosPlan{Seed: 1, Crashes: []chaos.Crash{{Node: node, At: chaos.Duration(at)}}}
}

func TestWithChaosCrashSurfacesToJoin(t *testing.T) {
	cluster := NewCluster(3, WithChaos(chaosCrashPlan(1, 3*time.Millisecond)))
	var joinErr error
	rep, err := cluster.Run(func(th *Thread) error {
		w, err := th.Spawn(func(w *Thread) error {
			if err := w.Migrate(1); err != nil {
				return err
			}
			w.Compute(20 * time.Millisecond) // never finishes: node 1 dies
			return w.MigrateBack()
		})
		if err != nil {
			return err
		}
		joinErr = th.Join(w)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if joinErr == nil || !strings.Contains(joinErr.Error(), "node 1 crashed") {
		t.Fatalf("Join = %v, want an error naming node 1", joinErr)
	}
	if rep.Chaos == nil || rep.Chaos.ThreadsLost != 1 || rep.Chaos.NodesLost != 1 {
		t.Fatalf("Report.Chaos = %+v, want 1 node and 1 thread lost", rep.Chaos)
	}
}

func TestWithChaosSameSeedAndPlanIdentical(t *testing.T) {
	plan := &ChaosPlan{
		Seed: 4,
		Drop: []chaos.LinkRule{{Src: chaos.Any, Dst: chaos.Any, Prob: 0.3}},
		Dup:  []chaos.LinkRule{{Src: chaos.Any, Dst: chaos.Any, Prob: 0.3}},
	}
	run := func() Report {
		cluster := NewCluster(3, WithSeed(9), WithChaos(plan))
		rep, err := cluster.Run(chaosSharedCounterWorkload)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed and plan diverged:\n%+v\nvs\n%+v", r1, r2)
	}
	if r1.Chaos == nil || r1.Chaos.Injected.Dropped == 0 {
		t.Fatalf("no faults injected: %+v", r1.Chaos)
	}
}

func TestWithChaosEmptyPlanIsNoop(t *testing.T) {
	run := func(opts ...Option) Report {
		cluster := NewCluster(3, append([]Option{WithSeed(2)}, opts...)...)
		rep, err := cluster.Run(chaosSharedCounterWorkload)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	base := run()
	withEmpty := run(WithChaos(&ChaosPlan{Seed: 123}))
	if !reflect.DeepEqual(base, withEmpty) {
		t.Fatalf("empty chaos plan changed the run:\n%+v\nvs\n%+v", base, withEmpty)
	}
}

// chaosSharedCounterWorkload bounces a shared counter page between the
// cluster's nodes — enough protocol traffic for drop/dup plans to bite.
func chaosSharedCounterWorkload(th *Thread) error {
	addr, err := th.Mmap(PageSize, ProtRead|ProtWrite, "counter")
	if err != nil {
		return err
	}
	var ws []*Thread
	for i := 0; i < 4; i++ {
		i := i
		w, err := th.Spawn(func(w *Thread) error {
			if err := w.Migrate(1 + i%2); err != nil {
				return err
			}
			for k := 0; k < 20; k++ {
				if _, err := w.AddUint64(addr, 1); err != nil {
					return err
				}
				w.Compute(10 * time.Microsecond)
			}
			return w.MigrateBack()
		})
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	for _, w := range ws {
		if err := th.Join(w); err != nil {
			return err
		}
	}
	return nil
}

func TestParamsFingerprintDistinguishesChaosPlans(t *testing.T) {
	base := ParamsFingerprint(3)
	a := ParamsFingerprint(3, WithChaos(&ChaosPlan{Seed: 1, Drop: []chaos.LinkRule{{Src: chaos.Any, Dst: chaos.Any, Prob: 0.1}}}))
	b := ParamsFingerprint(3, WithChaos(&ChaosPlan{Seed: 1, Drop: []chaos.LinkRule{{Src: chaos.Any, Dst: chaos.Any, Prob: 0.2}}}))
	a2 := ParamsFingerprint(3, WithChaos(&ChaosPlan{Seed: 1, Drop: []chaos.LinkRule{{Src: chaos.Any, Dst: chaos.Any, Prob: 0.1}}}))
	if a == base || b == base {
		t.Fatal("chaos plan did not change the fingerprint")
	}
	if a == b {
		t.Fatal("different plans share a fingerprint")
	}
	if a != a2 {
		t.Fatal("equal plans have different fingerprints")
	}
	empty := ParamsFingerprint(3, WithChaos(&ChaosPlan{Seed: 5}))
	if empty != base {
		t.Fatal("empty plan changed the fingerprint")
	}
}

// TestDeadlockReportNamesNodeAndReason pins the enriched diagnostics: when
// application threads genuinely deadlock, the error lists each stuck
// thread's current node and its park reason, so the culprit is readable
// straight from the failure.
func TestDeadlockReportNamesNodeAndReason(t *testing.T) {
	cluster := NewCluster(3)
	_, err := cluster.Run(func(th *Thread) error {
		addr, err := th.Mmap(PageSize, ProtRead|ProtWrite, "futex")
		if err != nil {
			return err
		}
		blocked, err := th.Spawn(func(w *Thread) error {
			_, err := w.FutexWait(addr, 0) // never woken
			return err
		})
		if err != nil {
			return err
		}
		_, err = th.Spawn(func(w *Thread) error {
			if err := w.Migrate(2); err != nil {
				return err
			}
			return w.Join(blocked) // joins a thread that never finishes
		})
		return err
	})
	if err == nil {
		t.Fatal("deadlocked process did not surface an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "[node 2]") {
		t.Fatalf("deadlock report does not name the joiner's node: %v", err)
	}
	if !strings.Contains(msg, "join t1") {
		t.Fatalf("deadlock report does not name the join park reason: %v", err)
	}
}

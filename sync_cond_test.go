package dex

import (
	"testing"
	"time"
)

func TestCondProducerConsumer(t *testing.T) {
	cluster := NewCluster(3)
	_, err := cluster.Run(func(th *Thread) error {
		mu, err := NewMutex(th)
		if err != nil {
			return err
		}
		cond, err := NewCond(th, mu)
		if err != nil {
			return err
		}
		queue, err := th.Mmap(PageSize, ProtRead|ProtWrite, "queue-depth")
		if err != nil {
			return err
		}
		consumed, err := th.Mmap(PageSize, ProtRead|ProtWrite, "consumed")
		if err != nil {
			return err
		}
		const items = 12
		var ws []*Thread
		for c := 0; c < 2; c++ {
			c := c
			w, err := th.Spawn(func(w *Thread) error {
				if err := w.Migrate(1 + c); err != nil {
					return err
				}
				for {
					if err := mu.Lock(w); err != nil {
						return err
					}
					for {
						depth, err := w.ReadUint32(queue)
						if err != nil {
							return err
						}
						done, err := w.ReadUint32(consumed)
						if err != nil {
							return err
						}
						if depth > 0 || done >= items {
							break
						}
						if err := cond.Wait(w); err != nil {
							return err
						}
					}
					depth, err := w.ReadUint32(queue)
					if err != nil {
						return err
					}
					done, err := w.ReadUint32(consumed)
					if err != nil {
						return err
					}
					if depth == 0 && done >= items {
						if err := mu.Unlock(w); err != nil {
							return err
						}
						return w.MigrateBack()
					}
					if err := w.WriteUint32(queue, depth-1); err != nil {
						return err
					}
					if err := w.WriteUint32(consumed, done+1); err != nil {
						return err
					}
					if err := mu.Unlock(w); err != nil {
						return err
					}
					w.Compute(20 * time.Microsecond)
				}
			})
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		// Producer at the origin.
		for i := 0; i < items; i++ {
			if err := mu.Lock(th); err != nil {
				return err
			}
			depth, err := th.ReadUint32(queue)
			if err != nil {
				return err
			}
			if err := th.WriteUint32(queue, depth+1); err != nil {
				return err
			}
			if err := cond.Signal(th); err != nil {
				return err
			}
			if err := mu.Unlock(th); err != nil {
				return err
			}
			th.Compute(10 * time.Microsecond)
		}
		// Wake any consumer still waiting so it can observe completion.
		for {
			done, err := th.ReadUint32(consumed)
			if err != nil {
				return err
			}
			if done >= items {
				break
			}
			th.Compute(50 * time.Microsecond)
		}
		if err := mu.Lock(th); err != nil {
			return err
		}
		if err := cond.Broadcast(th); err != nil {
			return err
		}
		if err := mu.Unlock(th); err != nil {
			return err
		}
		for _, w := range ws {
			th.Join(w)
		}
		done, err := th.ReadUint32(consumed)
		if err != nil {
			return err
		}
		if done != items {
			t.Errorf("consumed = %d, want %d", done, items)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	cluster := NewCluster(2)
	_, err := cluster.Run(func(th *Thread) error {
		mu, err := NewMutex(th)
		if err != nil {
			return err
		}
		cond, err := NewCond(th, mu)
		if err != nil {
			return err
		}
		gate, err := th.Mmap(PageSize, ProtRead|ProtWrite, "gate")
		if err != nil {
			return err
		}
		const waiters = 6
		var ws []*Thread
		for i := 0; i < waiters; i++ {
			i := i
			w, err := th.Spawn(func(w *Thread) error {
				if err := w.Migrate(1 - i%2); err != nil {
					return err
				}
				if err := mu.Lock(w); err != nil {
					return err
				}
				for {
					g, err := w.ReadUint32(gate)
					if err != nil {
						return err
					}
					if g == 1 {
						break
					}
					if err := cond.Wait(w); err != nil {
						return err
					}
				}
				if err := mu.Unlock(w); err != nil {
					return err
				}
				return w.Migrate(0)
			})
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		th.Compute(3 * time.Millisecond) // let everyone block
		if err := mu.Lock(th); err != nil {
			return err
		}
		if err := th.WriteUint32(gate, 1); err != nil {
			return err
		}
		if err := cond.Broadcast(th); err != nil {
			return err
		}
		if err := mu.Unlock(th); err != nil {
			return err
		}
		for _, w := range ws {
			th.Join(w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	cluster := NewCluster(3)
	_, err := cluster.Run(func(th *Thread) error {
		sem, err := NewSemaphore(th, 2)
		if err != nil {
			return err
		}
		inside, err := th.Mmap(PageSize, ProtRead|ProtWrite, "inside")
		if err != nil {
			return err
		}
		maxSeen, err := th.Mmap(PageSize, ProtRead|ProtWrite, "max")
		if err != nil {
			return err
		}
		var ws []*Thread
		for i := 0; i < 6; i++ {
			i := i
			w, err := th.Spawn(func(w *Thread) error {
				if err := w.Migrate(i % 3); err != nil {
					return err
				}
				for k := 0; k < 3; k++ {
					if err := sem.Acquire(w); err != nil {
						return err
					}
					n, err := w.AddUint64(inside, 1)
					if err != nil {
						return err
					}
					cur, err := w.ReadUint64(maxSeen)
					if err != nil {
						return err
					}
					if n > cur {
						if err := w.WriteUint64(maxSeen, n); err != nil {
							return err
						}
					}
					w.Compute(30 * time.Microsecond)
					if _, err := w.AddUint64(inside, ^uint64(0)); err != nil {
						return err
					}
					if err := sem.Release(w); err != nil {
						return err
					}
				}
				return w.Migrate(0)
			})
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		for _, w := range ws {
			th.Join(w)
		}
		mx, err := th.ReadUint64(maxSeen)
		if err != nil {
			return err
		}
		if mx == 0 || mx > 2 {
			t.Errorf("max concurrent holders = %d, want 1..2", mx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	cluster := NewCluster(1)
	_, err := cluster.Run(func(th *Thread) error {
		sem, err := NewSemaphore(th, 1)
		if err != nil {
			return err
		}
		ok, err := sem.TryAcquire(th)
		if err != nil || !ok {
			t.Errorf("first TryAcquire = %v, %v", ok, err)
		}
		ok, err = sem.TryAcquire(th)
		if err != nil || ok {
			t.Errorf("second TryAcquire = %v, %v", ok, err)
		}
		if err := sem.Release(th); err != nil {
			return err
		}
		ok, err = sem.TryAcquire(th)
		if err != nil || !ok {
			t.Errorf("TryAcquire after release = %v, %v", ok, err)
		}
		if _, err := NewSemaphore(th, -1); err == nil {
			t.Error("negative initial count accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Distributed k-means over the DeX shared address space.
//
// The example mirrors the paper's KMN conversion (§V-A): a single-machine
// k-means becomes distributed by migrating each worker to its node at the
// start of the parallel phase. Points live in shared memory and replicate
// read-only to every node; per-thread partial sums are staged locally and
// published once per iteration into page-aligned slots (the §V-C
// optimization), and a futex-backed barrier separates the phases.
//
//	go run ./examples/kmeans
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"dex"
)

const (
	nodes   = 4
	threads = 16
	points  = 40_000
	k       = 8
	iters   = 5
)

func main() {
	rng := rand.New(rand.NewSource(42))
	data := make([]float64, points*2)
	for c := 0; c < 4; c++ { // four planted blobs
		for i := 0; i < points/4; i++ {
			idx := (c*points/4 + i) * 2
			data[idx] = float64(c%2)*40 + rng.NormFloat64()*3
			data[idx+1] = float64(c/2)*40 + rng.NormFloat64()*3
		}
	}

	cluster := dex.NewCluster(nodes)
	var centers []float64
	report, err := cluster.Run(func(t *dex.Thread) error {
		pts, err := t.Mmap(uint64(8*len(data)), dex.ProtRead|dex.ProtWrite, "points")
		if err != nil {
			return err
		}
		if err := writeFloats(t, pts, data); err != nil {
			return err
		}
		ctr, err := t.Mmap(dex.PageSize, dex.ProtRead|dex.ProtWrite, "centers")
		if err != nil {
			return err
		}
		if err := writeFloats(t, ctr, data[:2*k]); err != nil { // seed with first k points
			return err
		}
		// Page-aligned per-thread partial sums: k * (x, y, count).
		slots, err := t.Mmap(threads*dex.PageSize, dex.ProtRead|dex.ProtWrite, "partials")
		if err != nil {
			return err
		}
		bar, err := dex.NewBarrier(t, threads+1)
		if err != nil {
			return err
		}

		var ws []*dex.Thread
		for id := 0; id < threads; id++ {
			id := id
			w, err := t.Spawn(func(w *dex.Thread) error {
				if err := w.Migrate(id * nodes / threads); err != nil {
					return err
				}
				lo, hi := points*id/threads, points*(id+1)/threads
				for iter := 0; iter < iters; iter++ {
					cs, err := readFloats(w, ctr, 2*k)
					if err != nil {
						return err
					}
					part, err := readFloats(w, pts+dex.Addr(16*lo), 2*(hi-lo))
					if err != nil {
						return err
					}
					acc := make([]float64, 3*k)
					for i := 0; i < hi-lo; i++ {
						x, y := part[2*i], part[2*i+1]
						best, bd := 0, math.MaxFloat64
						for c := 0; c < k; c++ {
							dx, dy := x-cs[2*c], y-cs[2*c+1]
							if d := dx*dx + dy*dy; d < bd {
								best, bd = c, d
							}
						}
						acc[3*best] += x
						acc[3*best+1] += y
						acc[3*best+2]++
					}
					// Publish once into this thread's own page (§V-C).
					if err := writeFloats(w, slots+dex.Addr(id*dex.PageSize), acc); err != nil {
						return err
					}
					if err := bar.Wait(w); err != nil {
						return err
					}
					if err := bar.Wait(w); err != nil { // centers updated
						return err
					}
				}
				return w.MigrateBack()
			})
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}

		for iter := 0; iter < iters; iter++ {
			if err := bar.Wait(t); err != nil {
				return err
			}
			total := make([]float64, 3*k)
			for id := 0; id < threads; id++ {
				part, err := readFloats(t, slots+dex.Addr(id*dex.PageSize), 3*k)
				if err != nil {
					return err
				}
				for j, v := range part {
					total[j] += v
				}
			}
			next := make([]float64, 2*k)
			for c := 0; c < k; c++ {
				if n := total[3*c+2]; n > 0 {
					next[2*c] = total[3*c] / n
					next[2*c+1] = total[3*c+1] / n
				}
			}
			if err := writeFloats(t, ctr, next); err != nil {
				return err
			}
			if err := bar.Wait(t); err != nil {
				return err
			}
		}
		for _, w := range ws {
			t.Join(w)
		}
		centers, err = readFloats(t, ctr, 2*k)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final centers (four blobs at (0,0) (40,0) (0,40) (40,40)):")
	for c := 0; c < k; c++ {
		if centers[2*c] != 0 || centers[2*c+1] != 0 {
			fmt.Printf("  (%6.2f, %6.2f)\n", centers[2*c], centers[2*c+1])
		}
	}
	fmt.Printf("virtual time %v on %d nodes, %d migrations, %d page faults\n",
		report.Elapsed, nodes, report.Migrations, report.DSM.Faults())
}

func writeFloats(t *dex.Thread, addr dex.Addr, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return t.Write(addr, buf)
}

func readFloats(t *dex.Thread, addr dex.Addr, n int) ([]float64, error) {
	buf := make([]byte, 8*n)
	if err := t.Read(addr, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// Quickstart: extend a process beyond one machine with a single call.
//
// A four-node cluster runs one process. Worker threads relocate themselves
// to remote nodes with Migrate, increment a counter in the shared address
// space — ordinary loads and stores, kept consistent by the page-level
// protocol — and return. The main thread reads the total back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dex"
)

func main() {
	cluster := dex.NewCluster(4)
	report, err := cluster.Run(func(t *dex.Thread) error {
		// One page of shared memory holding the counter.
		counter, err := t.Mmap(dex.PageSize, dex.ProtRead|dex.ProtWrite, "counter")
		if err != nil {
			return err
		}

		var workers []*dex.Thread
		for node := 1; node < 4; node++ {
			node := node
			w, err := t.Spawn(func(w *dex.Thread) error {
				// Relocate this thread to another machine...
				if err := w.Migrate(node); err != nil {
					return err
				}
				fmt.Printf("worker %d now executing on node %d\n", w.ID(), w.Node())
				// ...and keep using the same memory as everyone else.
				for i := 0; i < 100; i++ {
					if _, err := w.AddUint64(counter, 1); err != nil {
						return err
					}
				}
				return w.MigrateBack()
			})
			if err != nil {
				return err
			}
			workers = append(workers, w)
		}
		for _, w := range workers {
			t.Join(w)
		}

		total, err := t.ReadUint64(counter)
		if err != nil {
			return err
		}
		fmt.Printf("counter = %d (expected 300)\n", total)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual time: %v, migrations: %d, page faults: %d (%d writes)\n",
		report.Elapsed, report.Migrations, report.DSM.Faults(), report.DSM.WriteFaults)
}

// Finding false sharing with the DeX page-fault profiler (§IV of the paper).
//
// Two versions of the same workload run under the profiler. In the first,
// every thread's hot counter is packed onto one shared page — the classic
// false-sharing pathology: the page ping-pongs between nodes and the trace
// shows one page with write traffic from every node. In the second, each
// counter sits in its own page-aligned slot, and the cross-node traffic
// disappears. This is exactly the diagnose-and-fix loop the paper's
// profiling tool supports.
//
//	go run ./examples/profiler
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dex"
)

const (
	nodes   = 4
	threads = 8
	updates = 400
)

func run(aligned bool) (*dex.Trace, dex.Report, error) {
	trace := dex.NewTrace()
	cluster := dex.NewCluster(nodes, dex.WithTrace(trace))
	var proc *dex.Process
	p := cluster.Start(func(t *dex.Thread) error {
		label := "counters-packed"
		size := uint64(dex.PageSize)
		stride := 8
		if aligned {
			label = "counters-aligned"
			size = uint64(threads * dex.PageSize)
			stride = dex.PageSize
		}
		counters, err := t.Mmap(size, dex.ProtRead|dex.ProtWrite, label)
		if err != nil {
			return err
		}
		var ws []*dex.Thread
		for id := 0; id < threads; id++ {
			id := id
			w, err := t.Spawn(func(w *dex.Thread) error {
				if err := w.Migrate(id * nodes / threads); err != nil {
					return err
				}
				w.SetSite("worker/update-loop")
				my := counters + dex.Addr(id*stride)
				for i := 0; i < updates; i++ {
					if _, err := w.AddUint64(my, 1); err != nil {
						return err
					}
					w.Compute(2 * time.Microsecond) // some local work per update
				}
				return w.MigrateBack()
			})
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		for _, w := range ws {
			t.Join(w)
		}
		return nil
	})
	proc = p
	if err := cluster.Wait(); err != nil {
		return nil, dex.Report{}, err
	}
	dex.LabelTrace(trace, proc)
	return trace, proc.Report(), nil
}

func main() {
	fmt.Println("### packed per-thread counters (false sharing) ###")
	trace, rep, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	trace.Report(os.Stdout, 3)
	fmt.Printf("\nelapsed: %v   write faults: %d   retries (NACKs): %d\n",
		rep.Elapsed, rep.DSM.WriteFaults, rep.DSM.Nacks)

	fmt.Println("\n### page-aligned counters (fixed, as §IV-B prescribes) ###")
	trace, rep, err = run(true)
	if err != nil {
		log.Fatal(err)
	}
	trace.Report(os.Stdout, 3)
	fmt.Printf("\nelapsed: %v   write faults: %d   retries (NACKs): %d\n",
		rep.Elapsed, rep.DSM.WriteFaults, rep.DSM.Nacks)
}

// Relocating computation near its data — the paper's closing scenario.
//
// Producer threads pinned to each node keep regenerating per-node datasets;
// consumer threads, initially placed on the wrong nodes, pull every round's
// data across the fabric. Phase one runs under the page-fault profiler; the
// affinity analysis then recommends where each consumer belongs, and phase
// two lets the consumers migrate themselves accordingly. Cross-node read
// faults collapse and the round time drops.
//
//	go run ./examples/affinity
package main

import (
	"fmt"
	"log"
	"time"

	"dex"
)

const (
	nodes     = 4
	pagesEach = 24
	rounds    = 6
)

// phase runs producers and consumers for `rounds` rounds. placement maps
// consumer i to its node; the returned duration covers the steady rounds.
func phase(trace *dex.Trace, placement [nodes]int) (time.Duration, dex.Report, error) {
	opts := []dex.Option{dex.WithSeed(7)}
	if trace != nil {
		opts = append(opts, dex.WithTrace(trace))
	}
	cluster := dex.NewCluster(nodes, opts...)
	var span time.Duration
	report, err := cluster.Run(func(t *dex.Thread) error {
		// One data region per node, page aligned.
		regionBytes := uint64(pagesEach * dex.PageSize)
		regions := make([]dex.Addr, nodes)
		for i := range regions {
			a, err := t.Mmap(regionBytes, dex.ProtRead|dex.ProtWrite, fmt.Sprintf("dataset-%d", i))
			if err != nil {
				return err
			}
			regions[i] = a
		}
		bar, err := dex.NewBarrier(t, 2*nodes)
		if err != nil {
			return err
		}
		var ws []*dex.Thread
		// Producers: one per node, regenerating that node's dataset.
		for n := 0; n < nodes; n++ {
			n := n
			w, err := t.Spawn(func(w *dex.Thread) error {
				if err := w.Migrate(n); err != nil {
					return err
				}
				w.SetSite("producer/write")
				buf := make([]byte, pagesEach*dex.PageSize)
				for r := 0; r < rounds; r++ {
					for i := range buf {
						buf[i] = byte(r + n + i)
					}
					if err := w.Write(regions[n], buf); err != nil {
						return err
					}
					w.Compute(100 * time.Microsecond)
					if err := bar.Wait(w); err != nil {
						return err
					}
					if err := bar.Wait(w); err != nil {
						return err
					}
				}
				return w.MigrateBack()
			})
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		// Consumers: consumer i processes dataset i but starts on
		// placement[i].
		var startAt, endAt time.Duration
		for c := 0; c < nodes; c++ {
			c := c
			w, err := t.Spawn(func(w *dex.Thread) error {
				if err := w.Migrate(placement[c]); err != nil {
					return err
				}
				w.SetSite("consumer/read")
				buf := make([]byte, pagesEach*dex.PageSize)
				for r := 0; r < rounds; r++ {
					if err := bar.Wait(w); err != nil { // producer finished
						return err
					}
					if c == 0 && r == 1 {
						startAt = w.Now() // skip the cold first round
					}
					if err := w.Read(regions[c], buf); err != nil {
						return err
					}
					sum := 0
					for _, b := range buf {
						sum += int(b)
					}
					_ = sum
					w.Compute(150 * time.Microsecond)
					if err := bar.Wait(w); err != nil {
						return err
					}
					if c == 0 && r == rounds-1 {
						endAt = w.Now()
					}
				}
				return w.MigrateBack()
			})
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		for _, w := range ws {
			t.Join(w)
		}
		span = endAt - startAt
		return nil
	})
	return span, report, err
}

func main() {
	// Phase 1: consumers deliberately misplaced (rotated by one node).
	var misplaced [nodes]int
	for i := range misplaced {
		misplaced[i] = (i + 1) % nodes
	}
	trace := dex.NewTrace()
	before, repBefore, err := phase(trace, misplaced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("misplaced consumers: %v per run, %d read faults\n", before, repBefore.DSM.ReadFaults)

	// The affinity analysis reads the trace and recommends placements.
	suggestions := trace.AffinitySuggestions(4)
	fmt.Println("affinity suggestions (move thread to its data's producer):")
	var fixed [nodes]int
	copy(fixed[:], misplaced[:])
	for _, s := range suggestions {
		fmt.Printf("  thread %d: node %d -> node %d (%d/%d remote reads, %.0f%% local after move)\n",
			s.Task, s.From, s.To, s.ReadFaults, s.Total, 100*s.Score())
		// Producers are threads 1..nodes; consumers are nodes+1..2*nodes.
		if c := s.Task - nodes - 1; c >= 0 && c < nodes {
			fixed[c] = s.To
		}
	}

	// Phase 2: apply the suggestions.
	after, repAfter, err := phase(nil, fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("affinity-placed consumers: %v per run, %d read faults\n", after, repAfter.DSM.ReadFaults)
	fmt.Printf("speedup from relocating computation near its data: %.2fx\n",
		float64(before)/float64(after))
}

// Distributed breadth-first search over a shared graph.
//
// A synthetic scale-free graph lives in the DeX address space; worker
// threads on different nodes own vertex ranges and run a level-synchronous
// BFS with locally staged discoveries (the Polymer-style conversion of the
// paper's §V). The result is verified against a sequential BFS.
//
//	go run ./examples/graphbfs
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"dex"
)

const (
	nodes   = 4
	threads = 8
	nVerts  = 4096
	nEdges  = 32768
)

// genGraph builds a skewed random digraph in CSR form.
func genGraph() (offsets []uint64, edges []uint32) {
	rng := rand.New(rand.NewSource(7))
	adj := make([][]uint32, nVerts)
	for i := 0; i < nEdges; i++ {
		// Preferential-attachment-flavoured endpoints.
		src := rng.Intn(nVerts)
		dst := rng.Intn(rng.Intn(nVerts) + 1)
		adj[src] = append(adj[src], uint32(dst))
	}
	offsets = make([]uint64, nVerts+1)
	for v, a := range adj {
		offsets[v+1] = offsets[v] + uint64(len(a))
		edges = append(edges, a...)
	}
	return offsets, edges
}

// seqBFS is the single-machine reference.
func seqBFS(offsets []uint64, edges []uint32, src int) []int32 {
	level := make([]int32, nVerts)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int{src}
	for d := int32(1); len(frontier) > 0; d++ {
		var next []int
		for _, v := range frontier {
			for _, w := range edges[offsets[v]:offsets[v+1]] {
				if level[w] == -1 {
					level[w] = d
					next = append(next, int(w))
				}
			}
		}
		frontier = next
	}
	return level
}

func main() {
	offsets, edges := genGraph()
	src := 0
	want := seqBFS(offsets, edges, src)

	cluster := dex.NewCluster(nodes)
	got := make([]int32, nVerts)
	report, err := cluster.Run(func(t *dex.Thread) error {
		offA, err := t.Mmap(uint64(8*len(offsets)), dex.ProtRead|dex.ProtWrite, "offsets")
		if err != nil {
			return err
		}
		edgA, err := t.Mmap(uint64(4*len(edges)+8), dex.ProtRead|dex.ProtWrite, "edges")
		if err != nil {
			return err
		}
		lvlA, err := t.Mmap(uint64(4*nVerts), dex.ProtRead|dex.ProtWrite, "levels")
		if err != nil {
			return err
		}
		frontA, err := t.Mmap(nVerts, dex.ProtRead|dex.ProtWrite, "frontier-a")
		if err != nil {
			return err
		}
		frontB, err := t.Mmap(nVerts, dex.ProtRead|dex.ProtWrite, "frontier-b")
		if err != nil {
			return err
		}
		flagsA, err := t.Mmap(dex.PageSize, dex.ProtRead|dex.ProtWrite, "flags")
		if err != nil {
			return err
		}
		// Load the graph.
		obuf := make([]byte, 8*len(offsets))
		for i, v := range offsets {
			binary.LittleEndian.PutUint64(obuf[8*i:], v)
		}
		if err := t.Write(offA, obuf); err != nil {
			return err
		}
		ebuf := make([]byte, 4*len(edges))
		for i, v := range edges {
			binary.LittleEndian.PutUint32(ebuf[4*i:], v)
		}
		if err := t.Write(edgA, ebuf); err != nil {
			return err
		}
		if err := t.WriteUint32(lvlA+dex.Addr(4*src), 1); err != nil {
			return err
		}
		if err := t.Write(frontA+dex.Addr(src), []byte{1}); err != nil {
			return err
		}
		bar, err := dex.NewBarrier(t, threads)
		if err != nil {
			return err
		}

		var ws []*dex.Thread
		for id := 0; id < threads; id++ {
			id := id
			w, err := t.Spawn(func(w *dex.Thread) error {
				if err := w.Migrate(id * nodes / threads); err != nil {
					return err
				}
				lo, hi := nVerts*id/threads, nVerts*(id+1)/threads
				cf, nf := frontA, frontB
				// Replicate this range's adjacency once.
				myOff := make([]uint64, hi-lo+1)
				ob := make([]byte, 8*len(myOff))
				if err := w.Read(offA+dex.Addr(8*lo), ob); err != nil {
					return err
				}
				for i := range myOff {
					myOff[i] = binary.LittleEndian.Uint64(ob[8*i:])
				}
				var myAdj []uint32
				if n := myOff[len(myOff)-1] - myOff[0]; n > 0 {
					eb := make([]byte, 4*n)
					if err := w.Read(edgA+dex.Addr(4*myOff[0]), eb); err != nil {
						return err
					}
					myAdj = make([]uint32, n)
					for i := range myAdj {
						myAdj[i] = binary.LittleEndian.Uint32(eb[4*i:])
					}
				}
				front := make([]byte, hi-lo)
				for level := uint32(1); level < 64; level++ {
					if err := w.Read(cf+dex.Addr(lo), front); err != nil {
						return err
					}
					nextLocal := make([]byte, hi-lo)
					changed := false
					for v := lo; v < hi; v++ {
						if front[v-lo] == 0 {
							continue
						}
						s, e := myOff[v-lo]-myOff[0], myOff[v-lo+1]-myOff[0]
						for _, dst := range myAdj[s:e] {
							lv, err := w.ReadUint32(lvlA + dex.Addr(4*dst))
							if err != nil {
								return err
							}
							if lv != 0 {
								continue
							}
							if err := w.WriteUint32(lvlA+dex.Addr(4*dst), level+1); err != nil {
								return err
							}
							if int(dst) >= lo && int(dst) < hi {
								nextLocal[int(dst)-lo] = 1
							} else if err := w.Write(nf+dex.Addr(dst), []byte{1}); err != nil {
								return err
							}
							changed = true
						}
					}
					// Merge local discoveries and clear our consumed slice.
					for i, b := range nextLocal {
						if b == 1 {
							if err := w.Write(nf+dex.Addr(lo+i), []byte{1}); err != nil {
								return err
							}
						}
					}
					if err := w.Write(cf+dex.Addr(lo), make([]byte, hi-lo)); err != nil {
						return err
					}
					if changed {
						if err := w.WriteUint32(flagsA+dex.Addr(4*(level-1)), 1); err != nil {
							return err
						}
					}
					if err := bar.Wait(w); err != nil {
						return err
					}
					fl, err := w.ReadUint32(flagsA + dex.Addr(4*(level-1)))
					if err != nil {
						return err
					}
					if err := bar.Wait(w); err != nil {
						return err
					}
					if fl == 0 {
						break
					}
					cf, nf = nf, cf
				}
				return w.MigrateBack()
			})
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		for _, w := range ws {
			t.Join(w)
		}
		lb := make([]byte, 4*nVerts)
		if err := t.Read(lvlA, lb); err != nil {
			return err
		}
		for v := range got {
			got[v] = int32(binary.LittleEndian.Uint32(lb[4*v:])) - 1
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	for v := range want {
		if got[v] != want[v] {
			log.Fatalf("level[%d] = %d, want %d", v, got[v], want[v])
		}
		if got[v] >= 0 {
			reached++
		}
	}
	fmt.Printf("BFS over %d vertices / %d edges on %d nodes: %d reachable, all levels verified\n",
		nVerts, len(edges), nodes, reached)
	fmt.Printf("virtual time %v, %d page faults (%d coalesced followers)\n",
		report.Elapsed, report.DSM.Faults(), report.DSM.FollowerJoins)
}

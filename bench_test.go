package dex_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus ablations and library micro-benchmarks.
//
// Each experiment benchmark regenerates its artifact at test scale and
// reports the headline virtual-time quantities as custom metrics (the
// paper's numbers are the targets; ns/op measures the simulator itself).
// Run the full-scale artifacts with: go run ./cmd/dexbench -size full
//
//	go test -bench=. -benchmem

import (
	"strconv"
	"testing"
	"time"

	"dex"
	"dex/internal/apps"
	"dex/internal/exper"
)

func benchExperiment(b *testing.B, id string) exper.Table {
	e, ok := exper.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var table exper.Table
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration: memoized cells would otherwise make
		// every iteration after the first free.
		table = e.Run(exper.NewRunner(0), apps.SizeTest)
	}
	return table
}

// BenchmarkE0ScaleUpInherent regenerates the §V-B inherent-scalability
// check (completion time vs threads on one scale-up node).
func BenchmarkE0ScaleUpInherent(b *testing.B) {
	benchExperiment(b, "scaleup")
}

// BenchmarkE1Table1Complexity regenerates Table I (adaptation complexity).
func BenchmarkE1Table1Complexity(b *testing.B) {
	benchExperiment(b, "table1")
}

// BenchmarkE2Figure2Scalability regenerates Figure 2 (application
// scalability, 1-8 nodes, initial vs optimized) at test scale.
func BenchmarkE2Figure2Scalability(b *testing.B) {
	benchExperiment(b, "figure2")
}

// BenchmarkE3Table2Migration regenerates Table II and reports the measured
// migration latencies (paper: 812.1 / 236.6 / 24.7 µs).
func BenchmarkE3Table2Migration(b *testing.B) {
	table := benchExperiment(b, "table2")
	report := func(metric, cell string) {
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			b.ReportMetric(v, metric)
		}
	}
	report("first-fwd-us", table.Rows[0][3])
	report("warm-fwd-us", table.Rows[1][3])
	report("backward-us", table.Rows[len(table.Rows)-1][3])
}

// BenchmarkE4Figure3Breakdown regenerates Figure 3 (migration latency
// breakdown at the remote; paper: 620 µs of remote-worker setup).
func BenchmarkE4Figure3Breakdown(b *testing.B) {
	table := benchExperiment(b, "figure3")
	if v, err := strconv.ParseFloat(table.Rows[0][2], 64); err == nil {
		b.ReportMetric(v, "worker-setup-us")
	}
}

// BenchmarkE5FaultPingPong regenerates the §V-D fault-handling
// microbenchmark (bimodal latency; paper: 19.3 µs fast, 158.8 µs retried).
func BenchmarkE5FaultPingPong(b *testing.B) {
	benchExperiment(b, "faults")
}

// Ablation benchmarks for the design decisions DESIGN.md calls out.

func BenchmarkAblationCoalescing(b *testing.B) { benchExperiment(b, "ablation-coalescing") }
func BenchmarkAblationRDMA(b *testing.B)       { benchExperiment(b, "ablation-rdma") }
func BenchmarkAblationVMA(b *testing.B)        { benchExperiment(b, "ablation-vma") }
func BenchmarkAblationUpgrade(b *testing.B)    { benchExperiment(b, "ablation-upgrade") }
func BenchmarkAblationAlignment(b *testing.B)  { benchExperiment(b, "ablation-alignment") }

// BenchmarkServeSLO regenerates the serving-layer SLO table (S1): live
// traffic under both protocols, clean and crash+restart.
func BenchmarkServeSLO(b *testing.B) { benchExperiment(b, "serve") }

// Library micro-benchmarks: wall-clock cost of simulating the core
// mechanisms (ns/op is simulator speed; the *-us metrics are virtual time).

// BenchmarkMigrationRoundTrip measures a warm migrate-out/migrate-back pair.
func BenchmarkMigrationRoundTrip(b *testing.B) {
	cluster := dex.NewCluster(2)
	var virtual time.Duration
	_, err := cluster.Run(func(t *dex.Thread) error {
		// Warm up the worker.
		if err := t.Migrate(1); err != nil {
			return err
		}
		if err := t.MigrateBack(); err != nil {
			return err
		}
		b.ResetTimer()
		start := t.Now()
		for i := 0; i < b.N; i++ {
			if err := t.Migrate(1); err != nil {
				return err
			}
			if err := t.MigrateBack(); err != nil {
				return err
			}
		}
		virtual = t.Now() - start
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(virtual.Nanoseconds())/float64(b.N)/1000, "virtual-us/op")
}

// BenchmarkRemotePageFault measures cold remote read faults (one page
// each), the paper's 19.3 µs path.
func BenchmarkRemotePageFault(b *testing.B) {
	cluster := dex.NewCluster(2)
	var virtual time.Duration
	_, err := cluster.Run(func(t *dex.Thread) error {
		addr, err := t.Mmap(uint64(b.N+1)*dex.PageSize, dex.ProtRead|dex.ProtWrite, "bench")
		if err != nil {
			return err
		}
		buf := make([]byte, dex.PageSize)
		for i := 0; i <= b.N; i++ {
			if err := t.Write(addr+dex.Addr(i)*dex.PageSize, buf); err != nil {
				return err
			}
		}
		if err := t.Migrate(1); err != nil {
			return err
		}
		b.ResetTimer()
		start := t.Now()
		for i := 0; i < b.N; i++ {
			if _, err := t.ReadUint64(addr + dex.Addr(i)*dex.PageSize); err != nil {
				return err
			}
		}
		virtual = t.Now() - start
		return t.MigrateBack()
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(virtual.Nanoseconds())/float64(b.N)/1000, "virtual-us/fault")
}

// BenchmarkLocalAccess measures the fast path: reads of pages the node
// already owns.
func BenchmarkLocalAccess(b *testing.B) {
	cluster := dex.NewCluster(1)
	_, err := cluster.Run(func(t *dex.Thread) error {
		addr, err := t.Mmap(64*dex.PageSize, dex.ProtRead|dex.ProtWrite, "local")
		if err != nil {
			return err
		}
		if err := t.Write(addr, make([]byte, 64*dex.PageSize)); err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := t.ReadUint64(addr + dex.Addr(i%64)*dex.PageSize); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFutexWakeRoundTrip measures a cross-node futex wait/wake pair.
func BenchmarkFutexWakeRoundTrip(b *testing.B) {
	cluster := dex.NewCluster(2)
	_, err := cluster.Run(func(t *dex.Thread) error {
		addr, err := t.Mmap(dex.PageSize, dex.ProtRead|dex.ProtWrite, "futex")
		if err != nil {
			return err
		}
		w, err := t.Spawn(func(w *dex.Thread) error {
			if err := w.Migrate(1); err != nil {
				return err
			}
			for i := 0; i < b.N; i++ {
				if _, err := w.FutexWait(addr, 0); err != nil {
					return err
				}
			}
			return w.MigrateBack()
		})
		if err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for {
				n, err := t.FutexWake(addr, 1)
				if err != nil {
					return err
				}
				if n == 1 {
					break
				}
				t.Compute(5 * time.Microsecond)
			}
		}
		t.Join(w)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
